#include "testing/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace calculon::testing {

namespace {

// SplitMix64: a well-mixed 64-bit finalizer. Used as a stateless hash so
// the fault decision for a key is independent of evaluation order.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform [0, 1) from the top 53 bits of the hash.
double UnitUniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double ParseRate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double rate = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || rate < 0.0 || rate > 1.0) {
    throw ConfigError("fault spec: " + key + " must be a rate in [0, 1], got " +
                      value);
  }
  return rate;
}

}  // namespace

FaultPlan FaultPlan::FromSpec(const std::string& spec) {
  FaultPlan plan;
  if (Trim(spec).empty()) return plan;
  for (const std::string& part : Split(spec, ',')) {
    const std::string item(Trim(part));
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("fault spec: expected key=value, got '" + item + "'");
    }
    const std::string key(Trim(item.substr(0, eq)));
    const std::string value(Trim(item.substr(eq + 1)));
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(std::strtoull(value.c_str(),
                                                           nullptr, 10));
    } else if (key == "throw") {
      plan.throw_rate = ParseRate(key, value);
    } else if (key == "error") {
      plan.error_rate = ParseRate(key, value);
    } else if (key == "delay") {
      plan.delay_rate = ParseRate(key, value);
    } else if (key == "delay_us") {
      plan.delay_us = std::atoi(value.c_str());
    } else {
      throw ConfigError("fault spec: unknown key '" + key + "'");
    }
  }
  if (plan.throw_rate + plan.error_rate + plan.delay_rate > 1.0) {
    throw ConfigError("fault spec: rates sum to more than 1");
  }
  return plan;
}

FaultPlan FaultPlan::FromEnv(const char* var) {
  const char* value = std::getenv(var);
  return value == nullptr ? FaultPlan{} : FromSpec(value);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Configure(const FaultPlan& plan) {
  plan_ = plan;
  throws_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  delays_.store(0, std::memory_order_relaxed);
  enabled_.store(plan.enabled(), std::memory_order_release);
}

FaultAction FaultInjector::Decide(std::uint64_t key) const {
  if (!enabled()) return FaultAction::kNone;
  const double u = UnitUniform(Mix(plan_.seed ^ Mix(key)));
  if (u < plan_.throw_rate) return FaultAction::kThrow;
  if (u < plan_.throw_rate + plan_.error_rate) return FaultAction::kError;
  if (u < plan_.throw_rate + plan_.error_rate + plan_.delay_rate) {
    return FaultAction::kDelay;
  }
  return FaultAction::kNone;
}

namespace {

void CountInjected(const char* kind) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.GetCounter(std::string("faults.injected.") + kind)->Increment();
  }
}

}  // namespace

bool FaultInjector::MaybeInject(std::uint64_t key) {
  switch (Decide(key)) {
    case FaultAction::kNone:
      return false;
    case FaultAction::kThrow:
      throws_.fetch_add(1, std::memory_order_relaxed);
      CountInjected("throw");
      throw InjectedFault(StrFormat(
          "injected fault at key %llu", static_cast<unsigned long long>(key)));
    case FaultAction::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      CountInjected("error");
      return true;
    case FaultAction::kDelay:
      delays_.fetch_add(1, std::memory_order_relaxed);
      CountInjected("delay");
      std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
      return false;
  }
  return false;
}

}  // namespace calculon::testing
