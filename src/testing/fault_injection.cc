#include "testing/fault_injection.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace calculon::testing {

namespace {

// SplitMix64: a well-mixed 64-bit finalizer. Used as a stateless hash so
// the fault decision for a key is independent of evaluation order.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform [0, 1) from the top 53 bits of the hash.
double UnitUniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double ParseRate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double rate = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || rate < 0.0 || rate > 1.0) {
    throw ConfigError("fault spec: " + key + " must be a rate in [0, 1], got " +
                      value);
  }
  return rate;
}

}  // namespace

FaultPlan FaultPlan::FromSpec(const std::string& spec) {
  FaultPlan plan;
  if (Trim(spec).empty()) return plan;
  for (const std::string& part : Split(spec, ',')) {
    const std::string item(Trim(part));
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("fault spec: expected key=value, got '" + item + "'");
    }
    const std::string key(Trim(item.substr(0, eq)));
    const std::string value(Trim(item.substr(eq + 1)));
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(std::strtoull(value.c_str(),
                                                           nullptr, 10));
    } else if (key == "throw") {
      plan.throw_rate = ParseRate(key, value);
    } else if (key == "error") {
      plan.error_rate = ParseRate(key, value);
    } else if (key == "delay") {
      plan.delay_rate = ParseRate(key, value);
    } else if (key == "delay_us") {
      plan.delay_us = std::atoi(value.c_str());
    } else if (key == "abort") {
      plan.abort_rate = ParseRate(key, value);
    } else if (key == "segv") {
      plan.segv_rate = ParseRate(key, value);
    } else if (key == "hang") {
      plan.hang_rate = ParseRate(key, value);
    } else if (key == "exit0") {
      plan.exit0_rate = ParseRate(key, value);
    } else if (key == "hang_s") {
      plan.hang_s = std::strtod(value.c_str(), nullptr);
    } else {
      throw ConfigError("fault spec: unknown key '" + key + "'");
    }
  }
  if (plan.throw_rate + plan.error_rate + plan.delay_rate + plan.abort_rate +
          plan.segv_rate + plan.hang_rate + plan.exit0_rate >
      1.0) {
    throw ConfigError("fault spec: rates sum to more than 1");
  }
  return plan;
}

std::string FaultPlan::ToSpec() const {
  // %.17g survives the strtod round trip, so FromSpec(ToSpec()) rebuilds a
  // plan making bit-identical Decide() calls in the worker process.
  std::string spec =
      StrFormat("seed=%llu", static_cast<unsigned long long>(seed));
  if (throw_rate > 0.0) spec += StrFormat(",throw=%.17g", throw_rate);
  if (error_rate > 0.0) spec += StrFormat(",error=%.17g", error_rate);
  if (delay_rate > 0.0) {
    spec += StrFormat(",delay=%.17g,delay_us=%d", delay_rate, delay_us);
  }
  if (abort_rate > 0.0) spec += StrFormat(",abort=%.17g", abort_rate);
  if (segv_rate > 0.0) spec += StrFormat(",segv=%.17g", segv_rate);
  if (hang_rate > 0.0) {
    spec += StrFormat(",hang=%.17g,hang_s=%.17g", hang_rate, hang_s);
  }
  if (exit0_rate > 0.0) spec += StrFormat(",exit0=%.17g", exit0_rate);
  return spec;
}

bool IsProcessFault(FaultAction action) {
  switch (action) {
    case FaultAction::kAbort:
    case FaultAction::kSegv:
    case FaultAction::kHang:
    case FaultAction::kExit0:
      return true;
    case FaultAction::kNone:
    case FaultAction::kThrow:
    case FaultAction::kError:
    case FaultAction::kDelay:
      return false;
  }
  return false;
}

FaultPlan FaultPlan::FromEnv(const char* var) {
  const char* value = std::getenv(var);
  return value == nullptr ? FaultPlan{} : FromSpec(value);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Configure(const FaultPlan& plan) {
  plan_ = plan;
  throws_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  delays_.store(0, std::memory_order_relaxed);
  enabled_.store(plan.enabled(), std::memory_order_release);
}

FaultAction FaultInjector::Decide(std::uint64_t key) const {
  if (!enabled()) return FaultAction::kNone;
  const double u = UnitUniform(Mix(plan_.seed ^ Mix(key)));
  double edge = plan_.throw_rate;
  if (u < edge) return FaultAction::kThrow;
  if (u < (edge += plan_.error_rate)) return FaultAction::kError;
  if (u < (edge += plan_.delay_rate)) return FaultAction::kDelay;
  if (u < (edge += plan_.abort_rate)) return FaultAction::kAbort;
  if (u < (edge += plan_.segv_rate)) return FaultAction::kSegv;
  if (u < (edge += plan_.hang_rate)) return FaultAction::kHang;
  if (u < (edge += plan_.exit0_rate)) return FaultAction::kExit0;
  return FaultAction::kNone;
}

namespace {

void CountInjected(const char* kind) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.GetCounter(std::string("faults.injected.") + kind)->Increment();
  }
}

}  // namespace

bool FaultInjector::MaybeInject(std::uint64_t key) {
  switch (Decide(key)) {
    case FaultAction::kNone:
      return false;
    case FaultAction::kThrow:
      throws_.fetch_add(1, std::memory_order_relaxed);
      CountInjected("throw");
      throw InjectedFault(StrFormat(
          "injected fault at key %llu", static_cast<unsigned long long>(key)));
    case FaultAction::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      CountInjected("error");
      return true;
    case FaultAction::kDelay:
      delays_.fetch_add(1, std::memory_order_relaxed);
      CountInjected("delay");
      std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
      return false;
    case FaultAction::kAbort:
    case FaultAction::kSegv:
    case FaultAction::kHang:
    case FaultAction::kExit0:
      // Process kinds act only inside a dist worker (MaybeInjectProcess).
      return false;
  }
  return false;
}

void FaultInjector::MaybeInjectProcess(std::uint64_t key) {
  switch (Decide(key)) {
    case FaultAction::kNone:
    case FaultAction::kThrow:
    case FaultAction::kError:
    case FaultAction::kDelay:
      return;
    case FaultAction::kAbort:
      std::abort();
    case FaultAction::kSegv:
      std::raise(SIGSEGV);
      return;  // unreachable unless SIGSEGV is blocked
    case FaultAction::kHang:
      std::this_thread::sleep_for(std::chrono::duration<double>(plan_.hang_s));
      return;
    case FaultAction::kExit0:
      std::_Exit(0);
  }
}

}  // namespace calculon::testing
