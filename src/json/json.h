// Minimal self-contained JSON value, parser and serializer.
//
// Calculon (like the original tool) describes applications, systems and
// execution strategies in JSON specification files; this module is the
// substrate that loads and saves them. It supports the full JSON grammar
// plus two conveniences used by hand-written spec files: '//' line comments
// and trailing commas.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace calculon::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps serialization deterministic (sorted keys).
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

[[nodiscard]] const char* ToString(Type type);

// A JSON document node with value semantics.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}             // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}           // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}        // NOLINT
  Value(int i) : type_(Type::kNumber), num_(i) {}           // NOLINT
  Value(std::int64_t i)                                     // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}   // NOLINT
  Value(std::string s)                                      // NOLINT
      : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a);                                           // NOLINT
  Value(Object o);                                          // NOLINT

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw ConfigError on type mismatch.
  [[nodiscard]] bool AsBool() const;
  [[nodiscard]] double AsDouble() const;
  [[nodiscard]] std::int64_t AsInt() const;
  [[nodiscard]] const std::string& AsString() const;
  [[nodiscard]] const Array& AsArray() const;
  [[nodiscard]] const Object& AsObject() const;
  [[nodiscard]] Array& AsArray();
  [[nodiscard]] Object& AsObject();

  // Object field access. `at` throws on a missing key; the `Get*` helpers
  // return the provided default when the key is absent (but still throw on a
  // present key of the wrong type, to catch config typos loudly).
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] bool GetBool(const std::string& key, bool def) const;
  [[nodiscard]] double GetDouble(const std::string& key, double def) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& key,
                                    std::int64_t def) const;
  [[nodiscard]] std::string GetString(const std::string& key,
                                      std::string def) const;

  Value& operator[](const std::string& key);  // object auto-vivification

  [[nodiscard]] std::string Dump(int indent = 0) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  void AppendTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirection keeps Value small and allows the recursive type.
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

// Parses a complete JSON document. Throws ConfigError with a line/column
// message on malformed input.
[[nodiscard]] Value Parse(std::string_view text);

// File helpers.
[[nodiscard]] Value ParseFile(const std::string& path);
void WriteFile(const std::string& path, const Value& value, int indent = 2);

}  // namespace calculon::json
