#include "json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/fileio.h"
#include "util/strings.h"

namespace calculon::json {

const char* ToString(Type type) {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

Value::Value(Array a)
    : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
Value::Value(Object o)
    : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

namespace {
[[noreturn]] void TypeMismatch(Type want, Type got) {
  throw ConfigError(StrFormat("json: expected %s, got %s", ToString(want),
                              ToString(got)));
}
}  // namespace

bool Value::AsBool() const {
  if (type_ != Type::kBool) TypeMismatch(Type::kBool, type_);
  return bool_;
}

double Value::AsDouble() const {
  if (type_ != Type::kNumber) TypeMismatch(Type::kNumber, type_);
  return num_;
}

std::int64_t Value::AsInt() const {
  if (type_ != Type::kNumber) TypeMismatch(Type::kNumber, type_);
  const auto i = static_cast<std::int64_t>(num_);
  if (static_cast<double>(i) != num_) {
    throw ConfigError(StrFormat("json: %g is not an integer", num_));
  }
  return i;
}

const std::string& Value::AsString() const {
  if (type_ != Type::kString) TypeMismatch(Type::kString, type_);
  return str_;
}

const Array& Value::AsArray() const {
  if (type_ != Type::kArray) TypeMismatch(Type::kArray, type_);
  return *arr_;
}

const Object& Value::AsObject() const {
  if (type_ != Type::kObject) TypeMismatch(Type::kObject, type_);
  return *obj_;
}

Array& Value::AsArray() {
  if (type_ != Type::kArray) TypeMismatch(Type::kArray, type_);
  if (arr_.use_count() > 1) arr_ = std::make_shared<Array>(*arr_);
  return *arr_;
}

Object& Value::AsObject() {
  if (type_ != Type::kObject) TypeMismatch(Type::kObject, type_);
  if (obj_.use_count() > 1) obj_ = std::make_shared<Object>(*obj_);
  return *obj_;
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = AsObject();
  auto it = obj.find(key);
  if (it == obj.end()) {
    throw ConfigError(StrFormat("json: missing key '%s'", key.c_str()));
  }
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && obj_->count(key) > 0;
}

bool Value::GetBool(const std::string& key, bool def) const {
  return contains(key) ? at(key).AsBool() : def;
}
double Value::GetDouble(const std::string& key, double def) const {
  return contains(key) ? at(key).AsDouble() : def;
}
std::int64_t Value::GetInt(const std::string& key, std::int64_t def) const {
  return contains(key) ? at(key).AsInt() : def;
}
std::string Value::GetString(const std::string& key, std::string def) const {
  return contains(key) ? at(key).AsString() : def;
}

Value& Value::operator[](const std::string& key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
    obj_ = std::make_shared<Object>();
  }
  return AsObject()[key];
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Type::kNull: return true;
    case Type::kBool: return a.bool_ == b.bool_;
    case Type::kNumber: return a.num_ == b.num_;
    case Type::kString: return a.str_ == b.str_;
    case Type::kArray: return *a.arr_ == *b.arr_;
    case Type::kObject: return *a.obj_ == *b.obj_;
  }
  return false;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double d) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

}  // namespace

void Value::AppendTo(std::string& out, int indent, int depth) const {
  std::string pad;
  std::string pad_close;
  if (indent > 0) {
    pad.assign(1 + static_cast<std::size_t>(indent) *
                       (static_cast<std::size_t>(depth) + 1),
               ' ');
    pad[0] = '\n';
    pad_close.assign(
        1 + static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
    pad_close[0] = '\n';
  }
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(out, num_); break;
    case Type::kString: AppendEscaped(out, str_); break;
    case Type::kArray: {
      if (arr_->empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& v : *arr_) {
        if (!first) out += ',';
        if (indent > 0) out += pad; else if (!first) out += ' ';
        v.AppendTo(out, indent, depth + 1);
        first = false;
      }
      out += pad_close;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_->empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : *obj_) {
        if (!first) out += ',';
        if (indent > 0) out += pad; else if (!first) out += ' ';
        AppendEscaped(out, k);
        out += ": ";
        v.AppendTo(out, indent, depth + 1);
        first = false;
      }
      out += pad_close;
      out += '}';
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  AppendTo(out, indent, 0);
  return out;
}

namespace {

// Containers deeper than this are rejected. The parser recurses per nesting
// level, so unbounded depth would let a hostile spec file overflow the
// stack; real Calculon configs nest three or four levels.
constexpr int kMaxDepth = 128;

// Recursive-descent parser with line/column error reporting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ConfigError(
        StrFormat("json parse error at %d:%d: %s", line, col, msg.c_str()));
  }

  [[nodiscard]] bool AtEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char Next() {
    if (AtEnd()) Fail("unexpected end of input");
    return text_[pos_++];
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  void Expect(char c) {
    if (Peek() != c) Fail(StrFormat("expected '%c'", c));
    ++pos_;
  }

  Value ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '\0':
        if (AtEnd()) Fail("unexpected end of input");
        [[fallthrough]];
      case '"': return Value(ParseString());
      case 't': ParseLiteral("true"); return Value(true);
      case 'f': ParseLiteral("false"); return Value(false);
      case 'n': ParseLiteral("null"); return Value(nullptr);
      default: return ParseNumber();
    }
  }

  void ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      Fail(StrFormat("expected '%.*s'", static_cast<int>(lit.size()),
                     lit.data()));
    }
    pos_ += lit.size();
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-' || Peek() == '+') ++pos_;
    bool has_digits = false;
    auto eat_digits = [&] {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        has_digits = true;
      }
    };
    eat_digits();
    if (Peek() == '.') {
      ++pos_;
      eat_digits();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '-' || Peek() == '+') ++pos_;
      has_digits = false;  // the exponent needs its own digits
      eat_digits();
    }
    if (!has_digits) Fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Next();
      if (c == '"') break;
      if (c == '\\') {
        const char e = Next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = Next();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else Fail("invalid \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs are
            // passed through as replacement bytes, which spec files never use).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: Fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value ParseArray() {
    Expect('[');
    if (++depth_ > kMaxDepth) Fail("nesting too deep");
    Array arr;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      --depth_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        SkipWhitespace();
        if (Peek() == ']') {  // trailing comma
          ++pos_;
          break;
        }
        continue;
      }
      Expect(']');
      break;
    }
    --depth_;
    return Value(std::move(arr));
  }

  Value ParseObject() {
    Expect('{');
    if (++depth_ > kMaxDepth) Fail("nesting too deep");
    Object obj;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      // Duplicate keys are almost always a config-file editing mistake;
      // last-one-wins would silently drop the earlier value.
      if (obj.count(key) > 0) Fail("duplicate key '" + key + "'");
      obj[std::move(key)] = ParseValue();
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        SkipWhitespace();
        if (Peek() == '}') {  // trailing comma
          ++pos_;
          break;
        }
        continue;
      }
      Expect('}');
      break;
    }
    --depth_;
    return Value(std::move(obj));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value Parse(std::string_view text) { return Parser(text).ParseDocument(); }

Value ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

void WriteFile(const std::string& path, const Value& value, int indent) {
  // Atomic (temp + rename): a crash mid-write never leaves a torn
  // document at `path`, which checkpoint journals rely on.
  WriteFileAtomic(path, value.Dump(indent) + '\n');
}

}  // namespace calculon::json
