// Tensor-offloading model (Section 6, Fig. 8, Eq. 1).
//
// With offloading enabled, HBM keeps only a sliding window of block tensors
// (the block being computed plus prefetch and write-back slots) while the
// bulk lives in the tier-2 memory. Offload traffic overlaps with compute
// and network phases; when the tier-2 bandwidth is below the seamless
// threshold `size_tensor / T_compute` the remainder is exposed.
#pragma once

#include <cstdint>

#include "hw/memory.h"

namespace calculon {

struct OffloadInputs {
  bool weights = false;
  bool activations = false;
  bool optimizer = false;

  // Per-block, per-processor sizes.
  Bytes weight_block;
  Bytes weight_grad_block;
  Bytes act_block;    // stashed activations per microbatch
  Bytes optim_block;  // optimizer state

  std::int64_t blocks_per_proc = 1;
  std::int64_t microbatches = 1;  // per batch per pipeline
  double act_in_flight = 1.0;     // microbatches live at the worst stage

  // Phase durations (compute + exposed network) the traffic can hide under.
  Seconds fw_block_time;      // one block, one microbatch, forward
  Seconds bw_block_time;      // one block, one microbatch, backward
  Seconds fw_phase_total;     // whole forward phase per batch
  Seconds bw_phase_total;     // whole backward phase per batch
  Seconds optim_phase_total;  // optimizer step per batch
};

struct OffloadResult {
  Bytes tier2_weights;  // capacity demand by component
  Bytes tier2_acts;
  Bytes tier2_optimizer;
  Bytes traffic_bytes;          // tier-2 traffic per batch
  BytesPerSecond required_bw;   // Eq. 1: min bandwidth for full overlap
  Seconds busy_time;            // traffic / effective tier-2 bandwidth
  Seconds exposed_time;         // traffic not hidden behind any phase

  // Tier-1 working-set replacements (what stays in HBM).
  Bytes hbm_weights;
  Bytes hbm_weight_grads;
  Bytes hbm_acts;
  Bytes hbm_optimizer;

  [[nodiscard]] Bytes Tier2Total() const {
    return tier2_weights + tier2_acts + tier2_optimizer;
  }
};

// `mem2` is the offload tier; a zero-capacity tier with any offload flag
// set is reported by the caller as infeasible (this function assumes the
// tier exists when any flag is on).
[[nodiscard]] OffloadResult ComputeOffload(const OffloadInputs& in,
                                           const Memory& mem2);

}  // namespace calculon
