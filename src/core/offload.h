// Tensor-offloading model (Section 6, Fig. 8, Eq. 1).
//
// With offloading enabled, HBM keeps only a sliding window of block tensors
// (the block being computed plus prefetch and write-back slots) while the
// bulk lives in the tier-2 memory. Offload traffic overlaps with compute
// and network phases; when the tier-2 bandwidth is below the seamless
// threshold `size_tensor / T_compute` the remainder is exposed.
#pragma once

#include <cstdint>

#include "hw/memory.h"

namespace calculon {

struct OffloadInputs {
  bool weights = false;
  bool activations = false;
  bool optimizer = false;

  // Per-block, per-processor sizes (bytes).
  double weight_block = 0.0;
  double weight_grad_block = 0.0;
  double act_block = 0.0;    // stashed activations per microbatch
  double optim_block = 0.0;  // optimizer state

  std::int64_t blocks_per_proc = 1;
  std::int64_t microbatches = 1;   // per batch per pipeline
  double act_in_flight = 1.0;      // microbatches live at the worst stage

  // Phase durations (compute + exposed network) the traffic can hide under.
  double fw_block_time = 0.0;      // one block, one microbatch, forward
  double bw_block_time = 0.0;      // one block, one microbatch, backward
  double fw_phase_total = 0.0;     // whole forward phase per batch
  double bw_phase_total = 0.0;     // whole backward phase per batch
  double optim_phase_total = 0.0;  // optimizer step per batch
};

struct OffloadResult {
  double tier2_weights = 0.0;      // capacity demand by component
  double tier2_acts = 0.0;
  double tier2_optimizer = 0.0;
  double traffic_bytes = 0.0;      // tier-2 traffic per batch
  double required_bw = 0.0;        // Eq. 1: min bandwidth for full overlap
  double busy_time = 0.0;          // traffic / effective tier-2 bandwidth
  double exposed_time = 0.0;       // traffic not hidden behind any phase

  // Tier-1 working-set replacements (what stays in HBM).
  double hbm_weights = 0.0;
  double hbm_weight_grads = 0.0;
  double hbm_acts = 0.0;
  double hbm_optimizer = 0.0;

  [[nodiscard]] double Tier2Total() const {
    return tier2_weights + tier2_acts + tier2_optimizer;
  }
};

// `mem2` is the offload tier; a zero-capacity tier with any offload flag
// set is reported by the caller as infeasible (this function assumes the
// tier exists when any flag is on).
[[nodiscard]] OffloadResult ComputeOffload(const OffloadInputs& in,
                                           const Memory& mem2);

}  // namespace calculon
