#include "core/inference.h"

#include <algorithm>

#include "core/block.h"
#include "util/mathutil.h"
#include "util/strings.h"
#include "util/units.h"

namespace calculon {
namespace {

// Aggregate decode-step cost of one transformer block for `b` concurrent
// sequences at context length `ctx`, per processor.
struct DecodeBlockCost {
  Flops flops;
  Bytes bytes;  // tier-1 traffic: weights + KV cache + activations
};

DecodeBlockCost DecodeCost(const Application& app, const Execution& exec,
                           double ctx, double batch) {
  const double h = static_cast<double>(app.hidden);
  const double f = static_cast<double>(app.feedforward);
  const double aw =
      static_cast<double>(app.attn_heads * app.attn_size);
  const double t = static_cast<double>(exec.tensor_par);
  const double dt = exec.datatype_bytes;
  const double b = batch;

  DecodeBlockCost cost;
  // GEMV-like projections: QKV, output, MLP in/out.
  const double proj_flops =
      2.0 * b * (h * 3.0 * aw + aw * h + h * f + f * h) / t;
  // Attention against the KV cache: Q*K^T and scores*V over ctx entries.
  const double attn_flops = 2.0 * b * ctx * aw / t * 2.0;
  cost.flops = Flops(proj_flops + attn_flops);

  const double weight_bytes =
      dt * (h * 3.0 * aw + aw * h + h * f + f * h) / t;
  const double kv_bytes = 2.0 * dt * b * ctx * aw / t;  // K and V read
  const double act_bytes = dt * b * (6.0 * h + 2.0 * f / t);  // streams
  cost.bytes = Bytes(weight_bytes + kv_bytes + act_bytes);
  return cost;
}

}  // namespace

Result<InferenceStats> CalculateInference(const Application& app,
                                          const Execution& exec,
                                          const System& sys,
                                          const InferenceConfig& config) {
  using R = Result<InferenceStats>;
  if (exec.training) {
    return R(Infeasible::kIncompatibleOptions,
             "inference requires exec.training == false");
  }
  if (exec.any_offload()) {
    return R(Infeasible::kIncompatibleOptions,
             "offloading is not modeled for inference");
  }
  if (config.prompt_tokens < 1 || config.gen_tokens < 0 || config.batch < 1) {
    return R(Infeasible::kBadConfig, "bad inference config");
  }
  if (exec.num_procs != sys.num_procs()) {
    return R(Infeasible::kBadPartition,
             "execution proc count != system proc count");
  }
  // Structural validation with the serving batch in place.
  Execution e = exec;
  e.microbatch = config.batch;
  e.batch_size = config.batch * e.data_par;
  if (auto v = e.Validate(app); !v.ok()) return R(v.reason(), v.detail());

  const Processor& proc = sys.proc();
  const std::int64_t t = e.tensor_par;
  const std::int64_t p = e.pipeline_par;
  const std::int64_t bpp = CeilDiv(app.num_blocks, p);
  const Network* tp_net = sys.NetworkForSpan(t);
  const Network* pp_net =
      sys.NetworkForSpan(std::min<std::int64_t>(t * p, sys.num_procs()));
  if (tp_net == nullptr || pp_net == nullptr) {
    return R(Infeasible::kNetworkSize, "no network covers a communicator");
  }

  // --- Prefill: a forward pass over the prompt ---
  Application prompt_app = app;
  prompt_app.seq_size = config.prompt_tokens;
  const BlockModel block = BuildBlock(prompt_app, e);
  Seconds fw_block;
  for (const Layer& l : block.layers) {
    fw_block += proc.OpTime(l.kind, l.fw_flops, l.fw_bytes);
  }
  Seconds tp_fw_block;
  for (const CommOp& op : block.tp_fw) {
    tp_fw_block += tp_net->CollectiveTime(op.op, t, op.bytes);
  }
  const Seconds pp_hop = pp_net->CollectiveTime(
      Collective::kPointToPoint, 2, block.pp_output_bytes);
  // Time to first token: the prompt flows through all blocks and stage
  // boundaries once.
  const double nblocks = static_cast<double>(app.num_blocks);
  InferenceStats stats;
  stats.prefill_time = nblocks * (fw_block + tp_fw_block) +
                       static_cast<double>(p - 1) * pp_hop;

  // --- Decode: steady-state per-token step at full context ---
  const double ctx = static_cast<double>(config.prompt_tokens) +
                     static_cast<double>(config.gen_tokens);
  const double b = static_cast<double>(config.batch);
  const DecodeBlockCost cost = DecodeCost(app, e, ctx, b);
  const Seconds decode_block =
      proc.OpTime(ComputeKind::kMatrix, cost.flops, cost.bytes);
  const double dt = e.datatype_bytes;
  Seconds tp_token_block;
  if (t > 1) {
    // Two all-reduces of the (b, 1, h) hidden state per block.
    tp_token_block =
        2.0 * tp_net->CollectiveTime(Collective::kAllReduce, t,
                                     Bytes(dt * b *
                                           static_cast<double>(app.hidden)));
  }
  const Seconds pp_token_hop = pp_net->CollectiveTime(
      Collective::kPointToPoint, 2,
      Bytes(dt * b * static_cast<double>(app.hidden)));
  stats.per_token_time = nblocks * (decode_block + tp_token_block) +
                         static_cast<double>(p - 1) * pp_token_hop;
  stats.tp_comm_per_token = nblocks * tp_token_block;
  stats.pp_comm_per_token = static_cast<double>(p - 1) * pp_token_hop;

  // Autoregressive steps cannot pipeline within one sequence group, so
  // pipeline parallelism does not multiply decode throughput here; data
  // parallelism replicates the whole engine.
  stats.total_time = stats.prefill_time +
                     static_cast<double>(config.gen_tokens) *
                         stats.per_token_time;
  if (stats.per_token_time > Seconds(0.0)) {
    stats.tokens_per_second =
        b * static_cast<double>(e.data_par) / stats.per_token_time;
  }

  // --- Memory (per processor) ---
  const double aw = static_cast<double>(app.attn_heads * app.attn_size);
  stats.kv_cache_bytes = Bytes(2.0 * dt * b * ctx * aw /
                               static_cast<double>(t) *
                               static_cast<double>(bpp));
  const Bytes weight_bytes = block.WeightBytes() * static_cast<double>(bpp);
  // Transient working set: the prefill pass's largest tensors.
  const double working_raw =
      dt * b *
      (static_cast<double>(config.prompt_tokens) *
           (static_cast<double>(app.hidden) +
            static_cast<double>(app.feedforward) / static_cast<double>(t)) +
       static_cast<double>(app.attn_heads) / static_cast<double>(t) *
           static_cast<double>(config.prompt_tokens) *
           static_cast<double>(config.prompt_tokens));
  stats.tier1.weights = weight_bytes;
  stats.tier1.activations = stats.kv_cache_bytes + Bytes(working_raw);
  if (stats.tier1.Total() > proc.mem1.capacity()) {
    return R(Infeasible::kMemoryCapacity,
             StrFormat("needs %s, capacity %s",
                       FormatBytes(stats.tier1.Total()).c_str(),
                       FormatBytes(proc.mem1.capacity()).c_str()));
  }
  return R(std::move(stats));
}

}  // namespace calculon
