// Pipeline-parallel schedule arithmetic (Fig. 2).
//
// The schedule is the interleaved 1F1B of Narayanan et al.: each processor
// owns `interleaving` chunks of consecutive blocks; microbatches stream
// through; the backward pass of each block-microbatch pair runs as soon as
// its data is available. The fill/drain bubble shrinks with the
// interleaving factor; the non-1F1B (GPipe-like) schedule has the same
// bubble but must keep every microbatch's activations live.
#pragma once

#include <cstdint>

#include "util/quantity.h"

namespace calculon {

struct PipelineShape {
  std::int64_t stages = 1;         // pipeline depth p
  std::int64_t interleaving = 1;   // chunks per processor i
  std::int64_t microbatches = 1;   // microbatches per pipeline nm
  bool one_f_one_b = true;         // 1F1B (else all-forward-then-backward)
};

// Idle (bubble) time per batch given the per-microbatch time a processor
// spends on all of its blocks (forward + backward + recompute).
[[nodiscard]] Seconds PipelineBubbleTime(const PipelineShape& shape,
                                         Seconds per_microbatch_time);

// Number of microbatches whose stashed activations are simultaneously live
// on the worst (first) stage. 1F1B caps this at the pipeline depth;
// interleaving inflates it toward 2p (the paper: interleaved scheduling
// needs an even larger activation space than no PP); without 1F1B every
// microbatch stays live.
[[nodiscard]] double InFlightMicrobatches(const PipelineShape& shape);

}  // namespace calculon
