#include "core/layers.h"

namespace calculon {
namespace {

// Weight-gradient accumulation is kept in fp32 (4 bytes/param) and the Adam
// optimizer holds an fp32 master copy plus two fp32 moments (12 bytes/param),
// matching standard Megatron mixed-precision training.
constexpr double kGradBytesPerParam = 4.0;
constexpr double kOptimBytesPerParam = 12.0;

void AttachWeights(Layer& layer, double params, int dt, bool training) {
  layer.params = params;
  layer.weight_bytes = Bytes(dt * params);
  if (training) {
    layer.weight_grad_bytes = Bytes(kGradBytesPerParam * params);
    layer.optimizer_bytes = Bytes(kOptimBytesPerParam * params);
  }
}

}  // namespace

Layer MakeLinear(std::string name, const GemmShape& shape, int dt, bool bias,
                 bool training, double stored_input_elems) {
  const double m = shape.m;
  const double k = shape.k;
  const double n = shape.n;
  Layer layer;
  layer.name = std::move(name);
  layer.kind = ComputeKind::kMatrix;
  const double gemm = 2.0 * m * k * n;
  layer.fw_flops = Flops(gemm + (bias ? m * n : 0.0));
  layer.fw_bytes = Bytes(dt * (m * k + k * n + m * n));
  const double params = k * n + (bias ? n : 0.0);
  AttachWeights(layer, params, dt, training);
  if (training) {
    // dX = dY * Wt and dW = Xt * dY: two GEMMs of the forward shape.
    layer.bw_flops = Flops(2.0 * gemm + (bias ? m * n : 0.0));
    layer.bw_bytes = 2.0 * layer.fw_bytes + Bytes(kGradBytesPerParam * params);
    layer.act_stored =
        Bytes(dt * (stored_input_elems >= 0.0 ? stored_input_elems : m * k));
  }
  return layer;
}

Layer MakeBatchMatmul(std::string name, double batches, const GemmShape& shape,
                      int dt, bool training, double stored_elems,
                      bool attn_stash) {
  const double m = shape.m;
  const double k = shape.k;
  const double n = shape.n;
  Layer layer;
  layer.name = std::move(name);
  layer.kind = ComputeKind::kMatrix;
  const double gemm = 2.0 * batches * m * k * n;
  layer.fw_flops = Flops(gemm);
  layer.fw_bytes = Bytes(dt * batches * (m * k + k * n + m * n));
  if (training) {
    layer.bw_flops = Flops(2.0 * gemm);
    layer.bw_bytes = 2.0 * layer.fw_bytes;
    layer.act_stored = Bytes(dt * stored_elems);
    layer.attn_stash = attn_stash;
  }
  return layer;
}

Layer MakeVector(std::string name, const VectorShape& shape, int dt,
                 bool training, Bytes stored_bytes, bool attn_stash,
                 double weight_elems) {
  const double elems = shape.elems;
  Layer layer;
  layer.name = std::move(name);
  layer.kind = ComputeKind::kVector;
  layer.fw_flops = Flops(elems * shape.flops_per_elem);
  layer.fw_bytes = Bytes(dt * elems * (shape.tensors_in + shape.tensors_out));
  AttachWeights(layer, weight_elems, dt, training);
  if (training) {
    layer.bw_flops = 2.0 * layer.fw_flops;
    // Backward reads the incoming gradient and stash, writes the outgoing
    // gradient: one extra stream relative to forward.
    layer.bw_bytes =
        Bytes(dt * elems * (shape.tensors_in + shape.tensors_out + 1.0));
    layer.act_stored = stored_bytes;
    layer.attn_stash = attn_stash;
  }
  return layer;
}

}  // namespace calculon
