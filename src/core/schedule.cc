#include "core/schedule.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/strings.h"

namespace calculon {
namespace {

// Identity of one unit of work: a (microbatch, virtual stage) pair in a
// given direction. Virtual stage v = chunk * stages + stage, following the
// Megatron interleaved assignment.
struct UnitKey {
  TaskKind kind;
  std::int64_t microbatch;
  std::int64_t vstage;
  friend bool operator<(const UnitKey& a, const UnitKey& b) {
    return std::tie(a.kind, a.microbatch, a.vstage) <
           std::tie(b.kind, b.microbatch, b.vstage);
  }
};

struct Unit {
  TaskKind kind;
  std::int64_t microbatch;
  std::int64_t chunk;
};

// The k-th forward (or backward) unit issued by every stage, under the
// interleaved order: microbatches advance in groups of `stages`, cycling
// through the chunks (forward ascending, backward descending).
Unit NthUnit(TaskKind kind, std::int64_t k, std::int64_t stages,
             std::int64_t interleave) {
  const std::int64_t group = k / stages;
  std::int64_t chunk = group % interleave;
  if (kind == TaskKind::kBackward) chunk = interleave - 1 - chunk;
  const std::int64_t mb = (group / interleave) * stages + k % stages;
  return {kind, mb, chunk};
}

// Megatron's warm-up depth: how many forward units a stage runs before its
// first backward under 1F1B.
std::int64_t WarmupUnits(std::int64_t stage, std::int64_t stages,
                         std::int64_t interleave, std::int64_t total_units) {
  std::int64_t w;
  if (interleave == 1) {
    w = stages - stage - 1;
  } else {
    w = (stages - stage - 1) * 2 + (interleave - 1) * stages;
  }
  return std::min(w, total_units);
}

}  // namespace

Seconds ScheduleResult::TotalIdle() const {
  Seconds sum;
  for (Seconds idle : stage_idle) sum += idle;
  return sum;
}

std::string ScheduleResult::Render(int width) const {
  if (tasks.empty() || makespan <= Seconds(0.0) || width < 10) {
    return "(empty)\n";
  }
  const std::int64_t stages =
      static_cast<std::int64_t>(stage_idle.size());
  std::string out;
  for (std::int64_t s = 0; s < stages; ++s) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const ScheduleTask& t : tasks) {
      if (t.stage != s) continue;
      auto col = [&](Seconds time) {
        return std::min<std::int64_t>(
            width - 1,
            static_cast<std::int64_t>(time / makespan * width));
      };
      const char glyph = static_cast<char>(
          (t.kind == TaskKind::kForward ? 'A' : 'a') + (t.chunk % 26));
      for (std::int64_t c = col(t.start); c < std::max(col(t.end), col(t.start) + 1);
           ++c) {
        row[static_cast<std::size_t>(c)] = glyph;
      }
    }
    out += StrFormat("stage %2lld |", static_cast<long long>(s));
    out += row;
    out += "|\n";
  }
  return out;
}

std::string ScheduleResult::TraceJson(double time_scale) const {
  std::string out = "[\n";
  bool first = true;
  for (const ScheduleTask& t : tasks) {
    if (!first) out += ",\n";
    first = false;
    out += StrFormat(
        "{\"name\": \"%s mb%lld c%lld\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %lld}",
        t.kind == TaskKind::kForward ? "fw" : "bw",
        static_cast<long long>(t.microbatch),
        static_cast<long long>(t.chunk),
        t.kind == TaskKind::kForward ? "forward" : "backward",
        // unit-ok: Chrome-trace emit boundary (microsecond floats)
        t.start.raw() * time_scale, (t.end - t.start).raw() * time_scale,
        static_cast<long long>(t.stage));
  }
  out += "\n]\n";
  return out;
}

ScheduleResult BuildPipelineSchedule(const ScheduleParams& p) {
  if (p.stages < 1 || p.interleave < 1 || p.microbatches < 1) {
    throw std::invalid_argument("BuildPipelineSchedule: bad shape");
  }
  if (p.interleave > 1 && p.microbatches % p.stages != 0) {
    throw std::invalid_argument(
        "interleaved schedule needs microbatches % stages == 0");
  }
  const std::int64_t stages = p.stages;
  const std::int64_t interleave = p.interleave;
  const std::int64_t units = p.microbatches * interleave;  // per direction
  const std::int64_t vmax = stages * interleave;

  // Static per-stage order: warmup forwards, alternate fw/bw, drain
  // backwards (or all-fw-then-all-bw for the GPipe-like schedule).
  std::vector<std::vector<Unit>> order(static_cast<std::size_t>(stages));
  for (std::int64_t s = 0; s < stages; ++s) {
    auto& seq = order[static_cast<std::size_t>(s)];
    seq.reserve(static_cast<std::size_t>(2 * units));
    const std::int64_t warmup =
        p.one_f_one_b ? WarmupUnits(s, stages, interleave, units) : units;
    std::int64_t next_fw = 0;
    std::int64_t next_bw = 0;
    while (next_fw < warmup) {
      seq.push_back(NthUnit(TaskKind::kForward, next_fw++, stages,
                            interleave));
    }
    while (next_fw < units) {
      seq.push_back(NthUnit(TaskKind::kForward, next_fw++, stages,
                            interleave));
      seq.push_back(NthUnit(TaskKind::kBackward, next_bw++, stages,
                            interleave));
    }
    while (next_bw < units) {
      seq.push_back(NthUnit(TaskKind::kBackward, next_bw++, stages,
                            interleave));
    }
  }

  // Dependency-respecting execution of the static orders.
  std::map<UnitKey, Seconds> done;  // unit -> completion time
  std::vector<std::size_t> cursor(static_cast<std::size_t>(stages), 0);
  std::vector<Seconds> stage_time(static_cast<std::size_t>(stages));
  ScheduleResult result;
  result.tasks.reserve(static_cast<std::size_t>(2 * units * stages));

  auto dependency_ready = [&](const Unit& u, std::int64_t s,
                              Seconds* ready_at) {
    const std::int64_t v = u.chunk * stages + s;
    UnitKey dep{};
    if (u.kind == TaskKind::kForward) {
      if (v == 0) {
        *ready_at = Seconds(0.0);
        return true;
      }
      dep = {TaskKind::kForward, u.microbatch, v - 1};
    } else {
      if (v == vmax - 1) {
        dep = {TaskKind::kForward, u.microbatch, v};
      } else {
        dep = {TaskKind::kBackward, u.microbatch, v + 1};
      }
    }
    auto it = done.find(dep);
    if (it == done.end()) return false;
    // Same-stage dependencies (chunk hand-off within a processor) pay no
    // wire time.
    const std::int64_t dep_stage = dep.vstage % stages;
    *ready_at = it->second + (dep_stage == s ? Seconds(0.0) : p.p2p_time);
    return true;
  };

  std::int64_t remaining = 2 * units * stages;
  while (remaining > 0) {
    bool progress = false;
    for (std::int64_t s = 0; s < stages; ++s) {
      auto& cur = cursor[static_cast<std::size_t>(s)];
      while (cur < order[static_cast<std::size_t>(s)].size()) {
        const Unit& u = order[static_cast<std::size_t>(s)][cur];
        Seconds ready_at;
        if (!dependency_ready(u, s, &ready_at)) break;
        const Seconds duration = u.kind == TaskKind::kForward
                                     ? p.fw_chunk_time
                                     : p.bw_chunk_time;
        const Seconds start =
            std::max(stage_time[static_cast<std::size_t>(s)], ready_at);
        const Seconds end = start + duration;
        stage_time[static_cast<std::size_t>(s)] = end;
        done[{u.kind, u.microbatch, u.chunk * stages + s}] = end;
        result.tasks.push_back(
            {u.kind, s, u.chunk, u.microbatch, start, end});
        ++cur;
        --remaining;
        progress = true;
      }
    }
    if (!progress) {
      throw std::logic_error("pipeline schedule deadlocked");
    }
  }

  for (Seconds t : stage_time) result.makespan = std::max(result.makespan, t);
  result.stage_idle.assign(static_cast<std::size_t>(stages), Seconds(0.0));
  std::vector<Seconds> busy(static_cast<std::size_t>(stages));
  for (const ScheduleTask& t : result.tasks) {
    busy[static_cast<std::size_t>(t.stage)] += t.end - t.start;
  }
  for (std::int64_t s = 0; s < stages; ++s) {
    result.stage_idle[static_cast<std::size_t>(s)] =
        result.makespan - busy[static_cast<std::size_t>(s)];
  }

  // Peak live forward stashes per stage: +1 when a forward chunk starts,
  // -1 when its backward completes.
  for (std::int64_t s = 0; s < stages; ++s) {
    std::vector<std::pair<Seconds, int>> deltas;
    for (const ScheduleTask& t : result.tasks) {
      if (t.stage != s) continue;
      if (t.kind == TaskKind::kForward) {
        deltas.emplace_back(t.start, +1);
      } else {
        deltas.emplace_back(t.end, -1);
      }
    }
    std::sort(deltas.begin(), deltas.end());
    std::int64_t live = 0;
    std::int64_t peak = 0;
    for (const auto& [time, delta] : deltas) {
      live += delta;
      peak = std::max(peak, live);
    }
    // Normalize chunk count to microbatches (interleave chunks per mb).
    result.peak_in_flight = std::max(
        result.peak_in_flight,
        (peak + interleave - 1) / interleave);
  }

  std::sort(result.tasks.begin(), result.tasks.end(),
            [](const ScheduleTask& a, const ScheduleTask& b) {
              return std::tie(a.stage, a.start, a.chunk) <
                     std::tie(b.stage, b.start, b.chunk);
            });
  return result;
}

}  // namespace calculon
