#include "core/perf_model.h"

#include <algorithm>
#include <cmath>

#include "core/block.h"
#include "core/offload.h"
#include "core/pipeline.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/mathutil.h"
#include "util/strings.h"
#include "util/units.h"

namespace calculon {
namespace {

// Fraction of TP communication hidden behind GEMMs for each overlap scheme
// (Table 1: none/pipe/ring). Ring-exchange overlap pipelines the collective
// with the GEMM tiles and hides most of it; the pipe scheme hides about
// half.
double TpHideFraction(TpOverlap overlap) {
  switch (overlap) {
    case TpOverlap::kNone: return 0.0;
    case TpOverlap::kPipe: return 0.5;
    case TpOverlap::kRing: return 0.8;
  }
  return 0.0;
}

struct CommCost {
  Seconds total;    // network busy time
  Seconds exposed;  // time blocking computation (incl. throttling)
};

// Cost of a list of TP collectives with a given hidden fraction. Hidden
// communication still consumes `processor_fraction` of the compute it
// overlaps with, which we account as exposed throttle time.
CommCost TpCommCost(const std::vector<CommOp>& ops, const Network& net,
                    std::int64_t members, double hide_fraction) {
  CommCost cost;
  for (const CommOp& op : ops) {
    cost.total += net.CollectiveTime(op.op, members, op.bytes);
  }
  const Seconds hidden = cost.total * hide_fraction;
  cost.exposed = (cost.total - hidden) + hidden * net.processor_fraction();
  return cost;
}

// The model's output contract: every reported time and byte count is a
// finite, non-negative number. A violation here is a model bug (or an
// efficiency curve driving a rate to zero), not a property of the swept
// configuration, but it is recoverable for the caller — search engines
// should skip the configuration, not crash — so it is routed through
// Result<T> as kBadConfig rather than thrown.
const char* FindNonFinite(const Stats& stats) {
  auto bad = [](auto q) { return !IsFinite(q) || q < decltype(q)(0.0); };
  const TimeBreakdown& t = stats.time;
  if (bad(t.fw_pass) || bad(t.bw_pass) || bad(t.fw_recompute) ||
      bad(t.optim_step) || bad(t.pp_bubble) || bad(t.tp_comm) ||
      bad(t.pp_comm) || bad(t.dp_comm) || bad(t.offload)) {
    return "time breakdown";
  }
  const MemoryBreakdown* tiers[] = {&stats.tier1, &stats.tier2};
  for (const MemoryBreakdown* m : tiers) {
    if (bad(m->weights) || bad(m->activations) || bad(m->weight_grads) ||
        bad(m->act_grads) || bad(m->optimizer)) {
      return "memory breakdown";
    }
  }
  if (bad(stats.tp_comm_total) || bad(stats.pp_comm_total) ||
      bad(stats.dp_comm_total)) {
    return "communication totals";
  }
  if (bad(stats.offload_total) || bad(stats.offload_bw_required) ||
      bad(stats.offload_bytes)) {
    return "offload accounting";
  }
  return nullptr;
}

}  // namespace

Flops ModelFlopsPerSample(const Application& app, bool training) {
  // Closed form of the per-block GEMM work (kept on the hot path; the
  // equivalence with the layer-by-layer accounting is unit-tested).
  const double s = static_cast<double>(app.seq_size);
  const double h = static_cast<double>(app.hidden);
  const double f = static_cast<double>(app.feedforward);
  const double aw =
      static_cast<double>(app.attn_heads * app.attn_size);
  const double gemm = 2.0 * s * h * 3.0 * aw   // QKV projection
                      + 2.0 * s * s * aw       // Q * K^T
                      + 2.0 * s * s * aw       // scores * V
                      + 2.0 * s * aw * h       // output projection
                      + 2.0 * s * h * f        // MLP in
                      + 2.0 * s * f * h;       // MLP out
  const double bias = s * 3.0 * aw + s * h + s * f + s * h;
  // Backward doubles each GEMM (dX and dW) and repeats the bias add.
  const double per_block =
      training ? 3.0 * gemm + 2.0 * bias : gemm + bias;
  // Output vocabulary projection on the last stage, when modeled.
  const double vocab_gemm =
      2.0 * s * h * static_cast<double>(app.vocab_size);
  const double vocab = training ? 3.0 * vocab_gemm : vocab_gemm;
  return Flops(per_block * static_cast<double>(app.num_blocks) + vocab);
}

Result<Stats> CalculatePerformance(const Application& app,
                                   const Execution& exec, const System& sys) {
  using R = Result<Stats>;
  if (exec.num_procs != sys.num_procs()) {
    return R(Infeasible::kBadPartition,
             "execution proc count != system proc count");
  }
  if (auto v = exec.Validate(app); !v.ok()) {
    return R(v.reason(), v.detail());
  }

  // Sampled model-phase breakdown: 1 of every detail_period evaluations
  // (TraceRecorder::SampleDetail) records coarse spans for its compute /
  // communication / memory phases, so sweep traces show where model time
  // goes without recording millions of sub-microsecond spans. An early
  // (infeasible) return just ends the sampled evaluation's span sequence.
  obs::TraceRecorder& trace_rec = obs::TraceRecorder::Global();
  const bool traced = trace_rec.enabled() && trace_rec.SampleDetail();
  double phase_t0 = traced ? trace_rec.NowMicros() : 0.0;
  auto end_phase = [&](const char* name) {
    if (!traced) return;
    const double now = trace_rec.NowMicros();
    trace_rec.RecordComplete("model", name, phase_t0, now - phase_t0);
    phase_t0 = now;
  };

  const Processor& proc = sys.proc();
  const std::int64_t t = exec.tensor_par;
  const std::int64_t p = exec.pipeline_par;
  const std::int64_t d = exec.data_par;
  const std::int64_t nm = exec.MicrobatchesPerPipeline();
  const std::int64_t interleave = exec.pp_interleaving;
  // Uneven block division: the bottleneck stage owns the ceiling share and
  // sets the pipeline rhythm (this is the root of the efficiency cliffs of
  // Section 5.2).
  const std::int64_t bpp = CeilDiv(app.num_blocks, p);

  // Network placement: communicators are nested TP (innermost), PP, DP.
  const Network* tp_net = sys.NetworkForSpan(t);
  const Network* pp_net =
      sys.NetworkForSpan(std::min<std::int64_t>(t * p, sys.num_procs()));
  const Network* dp_net = sys.NetworkForSpan(sys.num_procs());
  if (tp_net == nullptr || pp_net == nullptr || dp_net == nullptr) {
    return R(Infeasible::kNetworkSize, "no network covers a communicator");
  }

  const BlockModel block = BuildBlock(app, exec);

  // --- Per-block compute time ---
  Seconds fw_block;
  Seconds bw_block;
  for (const Layer& l : block.layers) {
    fw_block += proc.OpTime(l.kind, l.fw_flops, l.fw_bytes);
    bw_block += proc.OpTime(l.kind, l.bw_flops, l.bw_bytes);
  }

  // Recomputation work during backward.
  Seconds recompute_block;
  if (exec.recompute == Recompute::kFull) {
    recompute_block = fw_block;
  } else if (exec.recompute == Recompute::kAttnOnly) {
    for (std::size_t idx : block.attn_recompute_layers) {
      const Layer& l = block.layers[idx];
      recompute_block += proc.OpTime(l.kind, l.fw_flops, l.fw_bytes);
    }
  }

  end_phase("compute");

  // --- Tensor-parallel communication per block ---
  const double hide = TpHideFraction(exec.tp_overlap);
  const CommCost tp_fw = TpCommCost(block.tp_fw, *tp_net, t, hide);
  const CommCost tp_bw = TpCommCost(block.tp_bw, *tp_net, t, hide);
  const CommCost tp_bw_extra =
      TpCommCost(block.tp_bw_extra, *tp_net, t, hide);
  // Full recomputation repeats the forward TP communication.
  const CommCost tp_recompute =
      exec.recompute == Recompute::kFull ? tp_fw : CommCost{};

  // --- Pipeline point-to-point per microbatch ---
  // In the steady 1F1B state a stage receives the next microbatch while
  // computing the current one, so a boundary transfer hides behind the
  // chunk's compute; only the excess is exposed (plus the processor share
  // the NIC steals while overlapped).
  CommCost pp_ub;
  if (p > 1) {
    const std::int64_t bpc = CeilDiv(bpp, interleave);  // blocks per chunk
    const Seconds xfer = pp_net->CollectiveTime(Collective::kPointToPoint, 2,
                                                block.pp_output_bytes);
    const double chunks = static_cast<double>(interleave);
    const Seconds fw_window = static_cast<double>(bpc) * fw_block;
    const Seconds bw_window =
        static_cast<double>(bpc) * (bw_block + recompute_block);
    auto exposed_xfer = [&](Seconds window) {
      const Seconds hidden = std::min(xfer, window);
      return (xfer - hidden) + hidden * pp_net->processor_fraction();
    };
    pp_ub.total = 2.0 * chunks * xfer;  // one send per chunk per pass
    pp_ub.exposed = chunks * (exposed_xfer(fw_window) + exposed_xfer(bw_window));
    // RS before the send and AG after the receive, on the TP network, when
    // the residual stream is not already sequence-sharded. These serialize
    // with the boundary.
    if (exec.pp_rs_ag && !exec.seq_par) {
      const Bytes full = block.pp_output_bytes * static_cast<double>(t);
      const Seconds rs_ag =
          2.0 * chunks *
          (tp_net->CollectiveTime(Collective::kReduceScatter, t, full) +
           tp_net->CollectiveTime(Collective::kAllGather, t, full));
      pp_ub.total += rs_ag;
      pp_ub.exposed += rs_ag;
    }
  }

  // --- Per-microbatch totals across the bottleneck stage's blocks ---
  const double nblocks = static_cast<double>(bpp);
  const Seconds fw_ub = nblocks * fw_block;
  const Seconds bw_ub = nblocks * bw_block;
  const Seconds recompute_ub = nblocks * recompute_block;
  const Seconds tp_exposed_ub =
      nblocks * (tp_fw.exposed + tp_bw.exposed + tp_bw_extra.exposed +
                 tp_recompute.exposed);
  const Seconds tp_total_ub =
      nblocks *
      (tp_fw.total + tp_bw.total + tp_bw_extra.total + tp_recompute.total);

  // --- Edge-stage vocabulary work (optional; vocab_size == 0 skips) ---
  // The first stage gathers embeddings, the last stage projects onto the
  // vocabulary and computes the loss softmax. The pipeline rhythm is set by
  // its slowest stage; folding both into the bottleneck stage is the
  // conservative approximation.
  Seconds vocab_ub;
  double vocab_params = 0.0;
  if (app.vocab_size > 0) {
    const double b = static_cast<double>(exec.microbatch);
    const double s = static_cast<double>(app.seq_size);
    const double h = static_cast<double>(app.hidden);
    const double v_shard = static_cast<double>(app.vocab_size) /
                           static_cast<double>(t);
    const double dtb = static_cast<double>(exec.datatype_bytes);
    // Output projection GEMM (b*s, h) x (h, V/t).
    const double proj_flops = 2.0 * b * s * h * v_shard;
    const double proj_bytes =
        dtb * (b * s * h + h * v_shard + b * s * v_shard);
    const Seconds proj_fw =
        proc.OpTime(ComputeKind::kMatrix, Flops(proj_flops),
                    Bytes(proj_bytes));
    const Seconds proj_bw =
        exec.training
            ? proc.OpTime(ComputeKind::kMatrix, Flops(2.0 * proj_flops),
                          Bytes(2.0 * proj_bytes))
            : Seconds(0.0);
    // Loss softmax over the sharded vocabulary.
    const Seconds soft = proc.OpTime(ComputeKind::kVector,
                                     Flops(5.0 * b * s * v_shard),
                                     Bytes(2.0 * dtb * b * s * v_shard));
    // Embedding gather: memory-bound table lookup of b*s rows.
    const Seconds gather =
        proc.OpTime(ComputeKind::kVector, Flops(b * s * h),
                    Bytes(dtb * b * s * h));
    vocab_ub = proj_fw + proj_bw + soft * (exec.training ? 2.0 : 1.0) +
               gather * (exec.training ? 2.0 : 1.0);
    vocab_params =
        static_cast<double>(app.EmbeddingParameters()) /
        static_cast<double>(t);
  }

  const Seconds per_ub = fw_ub + bw_ub + recompute_ub + tp_exposed_ub +
                         pp_ub.exposed + vocab_ub;

  const PipelineShape shape{p, interleave, nm, exec.pp_1f1b};
  const Seconds bubble = PipelineBubbleTime(shape, per_ub);
  const double in_flight = exec.training ? InFlightMicrobatches(shape) : 1.0;

  // --- Optimizer step ---
  const double params_local = block.WeightParams() * nblocks + vocab_params;
  const double shard = exec.optimizer_sharding ? static_cast<double>(d) : 1.0;
  // fp32 gradient accumulation: under the sharded (distributed) optimizer
  // the reduce-scatter lands each rank's shard directly, so the persistent
  // buffer divides by d; one block's worth of freshly produced gradients
  // stays resident as a transient buffer.
  const Bytes wgrad_block = block.WeightGradBytes();
  const Bytes wgrad_local =
      wgrad_block * nblocks / shard +
      (exec.training ? wgrad_block : Bytes(0.0));
  const double upd_params = params_local / shard;
  Seconds optim_time;
  if (exec.training && params_local > 0.0) {
    // Adam: read weight/grad/master/moments, write weight/master/moments.
    const double dtb = static_cast<double>(exec.datatype_bytes);
    const double optim_bytes = upd_params * (2.0 * dtb + 28.0);
    const double optim_flops = 8.0 * upd_params;
    optim_time = proc.OpTime(ComputeKind::kVector, Flops(optim_flops),
                             Bytes(optim_bytes));
  }

  // --- Data-parallel communication ---
  Seconds dp_total;
  Seconds dp_exposed;
  if (exec.training && d > 1) {
    const double dtb = static_cast<double>(exec.datatype_bytes);
    const Bytes grad_bytes = Bytes(params_local * dtb);
    Seconds overlappable;  // can hide behind the last backward pass
    Seconds post_step;     // must wait for the optimizer (sharded AG)
    if (exec.optimizer_sharding) {
      overlappable = dp_net->CollectiveTime(Collective::kReduceScatter, d,
                                            grad_bytes);
      post_step =
          dp_net->CollectiveTime(Collective::kAllGather, d, grad_bytes);
    } else {
      overlappable =
          dp_net->CollectiveTime(Collective::kAllReduce, d, grad_bytes);
    }
    dp_total = overlappable + post_step;
    if (exec.dp_overlap) {
      // Per Fig. 2(b): a layer's gradient reduction starts as soon as the
      // last microbatch passed it, overlapping the remaining backward
      // compute; only the final layer's share has nothing to hide behind.
      // Hidden communication still throttles the compute it overlaps.
      const double gfrac =
          nblocks > 1.0 ? (nblocks - 1.0) / nblocks : 0.0;
      const Seconds bw_window = (bw_ub + recompute_ub) * gfrac;
      const Seconds hidden_rs = std::min(overlappable * gfrac, bw_window);
      dp_exposed = (overlappable - hidden_rs) +
                   hidden_rs * dp_net->processor_fraction();
      // The sharded optimizer's weight all-gather cannot overlap the
      // optimizer step itself, but layer k's gathered weights are only
      // needed when the next batch's forward reaches it.
      const Seconds fw_window = fw_ub * gfrac;
      const Seconds hidden_ag = std::min(post_step * gfrac, fw_window);
      dp_exposed += (post_step - hidden_ag) +
                    hidden_ag * dp_net->processor_fraction();
    } else {
      dp_exposed = dp_total;
    }
  }

  end_phase("communication");

  // --- Offloading ---
  OffloadResult off;
  if (exec.any_offload()) {
    if (!proc.mem2.present()) {
      return R(Infeasible::kOffloadCapacity, "no tier-2 memory in system");
    }
    OffloadInputs in;
    in.weights = exec.weight_offload;
    in.activations = exec.activation_offload;
    in.optimizer = exec.optimizer_offload;
    in.weight_block = block.WeightBytes();
    in.weight_grad_block = wgrad_block / shard;
    in.act_block = block.ActStoredBytes(exec.recompute);
    in.optim_block = block.OptimizerBytes() / shard;
    in.blocks_per_proc = bpp;
    in.microbatches = nm;
    in.act_in_flight = in_flight;
    in.fw_block_time = fw_block + tp_fw.exposed;
    in.bw_block_time = bw_block + recompute_block + tp_bw.exposed;
    in.fw_phase_total =
        static_cast<double>(nm) * (fw_ub + tp_exposed_ub / 2.0);
    in.bw_phase_total =
        static_cast<double>(nm) * (bw_ub + recompute_ub + tp_exposed_ub / 2.0);
    in.optim_phase_total = optim_time;
    off = ComputeOffload(in, proc.mem2);
    if (off.Tier2Total() > proc.mem2.capacity()) {
      return R(Infeasible::kOffloadCapacity,
               StrFormat("needs %s tier-2, capacity %s",
                         FormatBytes(off.Tier2Total()).c_str(),
                         FormatBytes(proc.mem2.capacity()).c_str()));
    }
  }

  end_phase("offload");

  // --- Tier-1 memory accounting ---
  Stats stats;
  MemoryBreakdown& m1 = stats.tier1;
  const Bytes act_block_stored = block.ActStoredBytes(exec.recompute);
  const Bytes vocab_weight_bytes =
      Bytes(vocab_params * static_cast<double>(exec.datatype_bytes));
  m1.weights = (exec.weight_offload ? off.hbm_weights
                                    : block.WeightBytes() * nblocks) +
               vocab_weight_bytes;
  m1.weight_grads =
      exec.weight_offload ? off.hbm_weight_grads + wgrad_block : wgrad_local;
  if (exec.activation_offload) {
    m1.activations = off.hbm_acts;
  } else {
    m1.activations = act_block_stored * nblocks * in_flight;
  }
  // Working set of the block currently being (re)computed: its full
  // activation footprint exists transiently even under recomputation.
  m1.activations += block.ActStoredBytes(Recompute::kNone);
  m1.act_grads = block.act_grad_working_bytes;
  m1.optimizer = exec.optimizer_offload ? off.hbm_optimizer
                                        : block.OptimizerBytes() * nblocks /
                                              shard;
  if (exec.training && vocab_params > 0.0) {
    m1.weight_grads += Bytes(vocab_params * 4.0 / shard);
    m1.optimizer += Bytes(vocab_params * 12.0 / shard);
  }

  if (m1.Total() > proc.mem1.capacity()) {
    return R(Infeasible::kMemoryCapacity,
             StrFormat("needs %s, capacity %s",
                       FormatBytes(m1.Total()).c_str(),
                       FormatBytes(proc.mem1.capacity()).c_str()));
  }

  stats.tier2.weights = off.tier2_weights;
  stats.tier2.activations = off.tier2_acts;
  stats.tier2.optimizer = off.tier2_optimizer;

  end_phase("memory");

  // --- Roll-up ---
  const double fnm = static_cast<double>(nm);
  // Edge-stage vocabulary time splits roughly evenly across the passes.
  stats.time.fw_pass = fnm * (fw_ub + vocab_ub / 2.0);
  stats.time.bw_pass = fnm * (bw_ub + vocab_ub / 2.0);
  stats.time.fw_recompute = fnm * recompute_ub;
  stats.time.tp_comm = fnm * tp_exposed_ub;
  stats.time.pp_comm = fnm * pp_ub.exposed;
  stats.time.pp_bubble = bubble;
  stats.time.optim_step = optim_time;
  stats.time.dp_comm = dp_exposed;
  stats.time.offload = off.exposed_time;

  stats.tp_comm_total = fnm * tp_total_ub;
  stats.pp_comm_total = fnm * pp_ub.total;
  stats.dp_comm_total = dp_total;
  stats.offload_total = off.busy_time;
  stats.offload_bytes = off.traffic_bytes;
  stats.offload_bw_required = off.required_bw;

  stats.batch_time = stats.time.Total();
  if (stats.batch_time <= Seconds(0.0) || !IsFinite(stats.batch_time)) {
    return R(Infeasible::kBadConfig, "non-finite batch time");
  }
  if (const char* which = FindNonFinite(stats)) {
    return R(Infeasible::kBadConfig,
             StrFormat("non-finite or negative %s", which));
  }
  stats.sample_rate =
      static_cast<double>(exec.batch_size) / stats.batch_time;
  const Flops useful =
      ModelFlopsPerSample(app, exec.training) *
      static_cast<double>(exec.batch_size);
  stats.mfu = useful / (stats.batch_time *
                        static_cast<double>(sys.num_procs()) *
                        proc.matrix.peak_flops());
  end_phase("rollup");
  return R(std::move(stats));
}

}  // namespace calculon
