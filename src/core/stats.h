// Output statistics of one performance calculation: the total batch time,
// its breakdown (the stacks of Fig. 3/4/12), the memory breakdown, network
// and offloading accounting, and derived rates (sample rate, MFU).
#pragma once

#include <string>

#include "json/json.h"

namespace calculon {

struct TimeBreakdown {
  double fw_pass = 0.0;        // forward compute (all microbatches)
  double bw_pass = 0.0;        // backward compute
  double fw_recompute = 0.0;   // recomputation during backward
  double optim_step = 0.0;     // optimizer update
  double pp_bubble = 0.0;      // pipeline fill/drain idle time
  double tp_comm = 0.0;        // exposed tensor-parallel communication
  double pp_comm = 0.0;        // exposed pipeline point-to-point
  double dp_comm = 0.0;        // exposed data-parallel communication
  double offload = 0.0;        // exposed tier-2 offloading time

  [[nodiscard]] double Total() const {
    return fw_pass + bw_pass + fw_recompute + optim_step + pp_bubble +
           tp_comm + pp_comm + dp_comm + offload;
  }
};

struct MemoryBreakdown {
  double weights = 0.0;
  double activations = 0.0;
  double weight_grads = 0.0;
  double act_grads = 0.0;
  double optimizer = 0.0;

  [[nodiscard]] double Total() const {
    return weights + activations + weight_grads + act_grads + optimizer;
  }
};

struct Stats {
  TimeBreakdown time;          // exposed-time breakdown; sums to batch_time
  MemoryBreakdown tier1;       // HBM usage
  MemoryBreakdown tier2;       // offload-memory usage (zeros if unused)

  double batch_time = 0.0;     // seconds per training batch
  double sample_rate = 0.0;    // samples processed per second
  double mfu = 0.0;            // model FLOP utilization vs matrix peak

  // Total (not exposed) communication busy time per parallelism mode.
  double tp_comm_total = 0.0;
  double pp_comm_total = 0.0;
  double dp_comm_total = 0.0;

  // Offloading accounting.
  double offload_total = 0.0;          // tier-2 busy time
  double offload_bw_required = 0.0;    // Eq. 1 bandwidth for seamless overlap
  double offload_bytes = 0.0;          // traffic per batch

  [[nodiscard]] std::string Report() const;
  [[nodiscard]] json::Value ToJson() const;
};

}  // namespace calculon
