// Output statistics of one performance calculation: the total batch time,
// its breakdown (the stacks of Fig. 3/4/12), the memory breakdown, network
// and offloading accounting, and derived rates (sample rate, MFU).
#pragma once

#include <string>

#include "json/json.h"
#include "util/quantity.h"

namespace calculon {

struct TimeBreakdown {
  Seconds fw_pass;       // forward compute (all microbatches)
  Seconds bw_pass;       // backward compute
  Seconds fw_recompute;  // recomputation during backward
  Seconds optim_step;    // optimizer update
  Seconds pp_bubble;     // pipeline fill/drain idle time
  Seconds tp_comm;       // exposed tensor-parallel communication
  Seconds pp_comm;       // exposed pipeline point-to-point
  Seconds dp_comm;       // exposed data-parallel communication
  Seconds offload;       // exposed tier-2 offloading time

  [[nodiscard]] Seconds Total() const {
    return fw_pass + bw_pass + fw_recompute + optim_step + pp_bubble +
           tp_comm + pp_comm + dp_comm + offload;
  }
};

struct MemoryBreakdown {
  Bytes weights;
  Bytes activations;
  Bytes weight_grads;
  Bytes act_grads;
  Bytes optimizer;

  [[nodiscard]] Bytes Total() const {
    return weights + activations + weight_grads + act_grads + optimizer;
  }
};

struct Stats {
  TimeBreakdown time;     // exposed-time breakdown; sums to batch_time
  MemoryBreakdown tier1;  // HBM usage
  MemoryBreakdown tier2;  // offload-memory usage (zeros if unused)

  Seconds batch_time;      // time per training batch
  PerSecond sample_rate;   // samples processed per second
  double mfu = 0.0;        // model FLOP utilization vs matrix peak

  // Total (not exposed) communication busy time per parallelism mode.
  Seconds tp_comm_total;
  Seconds pp_comm_total;
  Seconds dp_comm_total;

  // Offloading accounting.
  Seconds offload_total;               // tier-2 busy time
  BytesPerSecond offload_bw_required;  // Eq. 1 bandwidth for seamless overlap
  Bytes offload_bytes;                 // traffic per batch

  [[nodiscard]] std::string Report() const;
  [[nodiscard]] json::Value ToJson() const;
};

}  // namespace calculon
