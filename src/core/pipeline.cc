#include "core/pipeline.h"

#include <algorithm>

namespace calculon {

double PipelineBubbleTime(const PipelineShape& shape,
                          double per_microbatch_time) {
  if (shape.stages <= 1) return 0.0;
  const double p = static_cast<double>(shape.stages);
  const double i = static_cast<double>(shape.interleaving);
  // Fill/drain: (p - 1) chunk slots; a chunk is 1/i of the per-microbatch
  // work, so interleaving divides the bubble by i.
  return (p - 1.0) * per_microbatch_time / i;
}

double InFlightMicrobatches(const PipelineShape& shape) {
  const double nm = static_cast<double>(shape.microbatches);
  if (shape.stages <= 1) return 1.0;
  if (!shape.one_f_one_b) return nm;  // GPipe keeps everything live
  const double p = static_cast<double>(shape.stages);
  const double i = static_cast<double>(shape.interleaving);
  // 1F1B: the first stage holds p microbatches in flight. Interleaving adds
  // partially-completed chunks of later microbatches; the published
  // multiplier (Korthikanti et al.) is (1 + (p-1)/(p*i)) on the 1F1B
  // footprint.
  const double in_flight = i > 1.0 ? p + (p - 1.0) / i : p;
  return std::min(nm, in_flight);
}

}  // namespace calculon
