#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace calculon {

namespace {
void CheckShape(const PipelineShape& shape) {
  CALC_DCHECK(shape.stages >= 1 && shape.interleaving >= 1 &&
                  shape.microbatches >= 1,
              "stages=%lld interleaving=%lld microbatches=%lld",
              static_cast<long long>(shape.stages),
              static_cast<long long>(shape.interleaving),
              static_cast<long long>(shape.microbatches));
}
}  // namespace

Seconds PipelineBubbleTime(const PipelineShape& shape,
                           Seconds per_microbatch_time) {
  CheckShape(shape);
  // NaN/inf-tolerant (!(x < 0)): zero-bandwidth tiers legitimately drive
  // per-microbatch time non-finite; the perf model's final screen rejects
  // those configurations as kBadConfig. Only definite negatives are bugs.
  CALC_DCHECK(!(per_microbatch_time < Seconds(0.0)),
              "per_microbatch_time = %g",
              per_microbatch_time.raw());  // unit-ok: diagnostic message
  if (shape.stages <= 1) return Seconds(0.0);
  const double p = static_cast<double>(shape.stages);
  const double i = static_cast<double>(shape.interleaving);
  // Fill/drain: (p - 1) chunk slots; a chunk is 1/i of the per-microbatch
  // work, so interleaving divides the bubble by i.
  return (p - 1.0) * per_microbatch_time / i;
}

double InFlightMicrobatches(const PipelineShape& shape) {
  CheckShape(shape);
  const double nm = static_cast<double>(shape.microbatches);
  if (shape.stages <= 1) return 1.0;
  if (!shape.one_f_one_b) return nm;  // GPipe keeps everything live
  const double p = static_cast<double>(shape.stages);
  const double i = static_cast<double>(shape.interleaving);
  // 1F1B: the first stage holds p microbatches in flight. Interleaving adds
  // partially-completed chunks of later microbatches; the published
  // multiplier (Korthikanti et al.) is (1 + (p-1)/(p*i)) on the 1F1B
  // footprint.
  const double in_flight = i > 1.0 ? p + (p - 1.0) / i : p;
  return std::min(nm, in_flight);
}

}  // namespace calculon
