// Inference performance model.
//
// The paper's model covers inference as well as training (Section 2
// includes the inference-side optimizations of its refs [1, 35]). This
// module models the two phases of transformer serving:
//
//   - prefill: one forward pass over the prompt (compute-bound, identical
//     in structure to a training forward pass), and
//   - decode: autoregressive generation, one token per step, where every
//     step must stream all local weights and the growing key/value cache
//     through tier-1 memory (bandwidth-bound).
//
// Tensor parallelism shards both weights and the KV cache; pipeline
// parallelism turns decode into a token pipeline (throughput improves,
// per-token latency does not).
#pragma once

#include <cstdint>

#include "core/stats.h"
#include "hw/system.h"
#include "models/application.h"
#include "models/execution.h"
#include "util/error.h"

namespace calculon {

struct InferenceConfig {
  std::int64_t prompt_tokens = 512;  // prompt length per sequence
  std::int64_t gen_tokens = 64;      // generated tokens per sequence
  std::int64_t batch = 1;            // concurrent sequences per pipeline
};

struct InferenceStats {
  // Latency.
  Seconds prefill_time;    // time to first token (one batch)
  Seconds per_token_time;  // steady-state decode step latency
  Seconds total_time;      // prefill + gen_tokens * per-token
  // Throughput.
  PerSecond tokens_per_second;  // generated tokens/s across the batch
  // Memory (per processor).
  MemoryBreakdown tier1;  // weights + KV cache (in `activations`)
  Bytes kv_cache_bytes;   // final-context KV cache share
  // Communication busy time per decode step.
  Seconds tp_comm_per_token;
  Seconds pp_comm_per_token;
};

// Runs the inference estimation. `exec.training` must be false and
// training-only options unset; `exec.batch_size`/`microbatch` are ignored
// in favour of `config.batch`. Data parallelism replicates the engine
// (throughput scales by d; latency is unaffected).
[[nodiscard]] Result<InferenceStats> CalculateInference(
    const Application& app, const Execution& exec, const System& sys,
    const InferenceConfig& config);

}  // namespace calculon
