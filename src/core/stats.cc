#include "core/stats.h"

#include <sstream>

#include "util/strings.h"
#include "util/units.h"

namespace calculon {

std::string Stats::Report() const {
  std::ostringstream os;
  auto line = [&](const char* label, Seconds seconds) {
    os << StrFormat(
        "  %-14s %12s  (%s)\n", label, FormatTime(seconds).c_str(),
        FormatPercent(batch_time > Seconds(0.0) ? seconds / batch_time : 0.0)
            .c_str());
  };
  os << "Batch time: " << FormatTime(batch_time)
     << "  sample rate: " << FormatNumber(sample_rate.raw(), 1) << "/s"
     << "  MFU: " << FormatPercent(mfu) << '\n';
  line("FW pass", time.fw_pass);
  line("BW pass", time.bw_pass);
  line("FW recompute", time.fw_recompute);
  line("Optim step", time.optim_step);
  line("PP bubble", time.pp_bubble);
  line("TP comm", time.tp_comm);
  line("PP comm", time.pp_comm);
  line("DP comm", time.dp_comm);
  line("Offload", time.offload);
  os << "HBM consumption: " << FormatBytes(tier1.Total()) << '\n';
  auto mem = [&](const char* label, Bytes bytes) {
    os << StrFormat(
        "  %-20s %12s  (%s)\n", label, FormatBytes(bytes).c_str(),
        FormatPercent(tier1.Total() > Bytes(0.0) ? bytes / tier1.Total() : 0.0)
            .c_str());
  };
  mem("Weight", tier1.weights);
  mem("Activation", tier1.activations);
  mem("Weight gradients", tier1.weight_grads);
  mem("Activation gradients", tier1.act_grads);
  mem("Optimizer space", tier1.optimizer);
  if (tier2.Total() > Bytes(0.0)) {
    os << "Offload memory: " << FormatBytes(tier2.Total())
       << "  required bandwidth: " << FormatBandwidth(offload_bw_required)
       << '\n';
  }
  return os.str();
}

json::Value Stats::ToJson() const {
  json::Object t;
  t["fw_pass"] = time.fw_pass.raw();
  t["bw_pass"] = time.bw_pass.raw();
  t["fw_recompute"] = time.fw_recompute.raw();
  t["optim_step"] = time.optim_step.raw();
  t["pp_bubble"] = time.pp_bubble.raw();
  t["tp_comm"] = time.tp_comm.raw();
  t["pp_comm"] = time.pp_comm.raw();
  t["dp_comm"] = time.dp_comm.raw();
  t["offload"] = time.offload.raw();

  auto mem_json = [](const MemoryBreakdown& m) {
    json::Object o;
    o["weights"] = m.weights.raw();
    o["activations"] = m.activations.raw();
    o["weight_grads"] = m.weight_grads.raw();
    o["act_grads"] = m.act_grads.raw();
    o["optimizer"] = m.optimizer.raw();
    return json::Value(std::move(o));
  };

  json::Object o;
  o["time"] = json::Value(std::move(t));
  o["tier1"] = mem_json(tier1);
  o["tier2"] = mem_json(tier2);
  o["batch_time"] = batch_time.raw();
  o["sample_rate"] = sample_rate.raw();
  o["mfu"] = mfu;
  o["tp_comm_total"] = tp_comm_total.raw();
  o["pp_comm_total"] = pp_comm_total.raw();
  o["dp_comm_total"] = dp_comm_total.raw();
  o["offload_total"] = offload_total.raw();
  o["offload_bw_required"] = offload_bw_required.raw();
  o["offload_bytes"] = offload_bytes.raw();
  return json::Value(std::move(o));
}

}  // namespace calculon
