// Per-layer cost report: itemizes every layer of the transformer block
// (time, FLOPs, traffic, stash) plus the attached TP communication — the
// drill-down view behind the aggregate Stats breakdown.
#pragma once

#include "hw/system.h"
#include "models/application.h"
#include "models/execution.h"
#include "util/table.h"

namespace calculon {

// One row per layer and per TP communication op, for one microbatch on one
// processor. `exec` must validate against `app`.
[[nodiscard]] Table LayerReport(const Application& app, const Execution& exec,
                                const System& sys);

}  // namespace calculon
