// Per-layer cost primitives of the transformer block (Fig. 1).
//
// A Layer records, for one microbatch on one processor, the forward and
// backward FLOPs, the tier-1 memory traffic, the bytes of activations that
// must be stashed for the backward pass, and the weight / gradient /
// optimizer footprints. Layers are pure data; the processor model turns
// them into time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/processor.h"

namespace calculon {

struct Layer {
  std::string name;
  ComputeKind kind = ComputeKind::kMatrix;

  // Per-microbatch compute and tier-1 traffic.
  double fw_flops = 0.0;
  double fw_bytes = 0.0;
  double bw_flops = 0.0;  // grad wrt inputs + grad wrt weights
  double bw_bytes = 0.0;

  // Bytes stashed at forward time for this layer's backward.
  double act_stored = 0.0;
  // True when the stash is one of the sequence-squared attention tensors
  // that selective ("attn-only") recomputation drops and re-derives.
  bool attn_stash = false;

  // Per-processor weight footprints (microbatch-independent).
  double params = 0.0;  // learnable parameter count
  double weight_bytes = 0.0;
  double weight_grad_bytes = 0.0;
  double optimizer_bytes = 0.0;
};

// Factory helpers. All sizes are element counts; `dt` is bytes per element.

// GEMM computing (M x K) * (K x N). Stores its input (M*K elements) unless
// `stored_input_elems` overrides it (sequence-parallel sharded stash).
[[nodiscard]] Layer MakeLinear(std::string name, double m, double k, double n,
                               int dt, bool bias, bool training,
                               double stored_input_elems = -1.0);

// Batched GEMM: `batches` independent (M x K) * (K x N) products. Weights
// are activations here (no learnable state). `stored_elems` is the stash.
[[nodiscard]] Layer MakeBatchMatmul(std::string name, double batches,
                                    double m, double k, double n, int dt,
                                    bool training, double stored_elems,
                                    bool attn_stash);

// Element-wise / normalization layer over `elems` elements performing
// `flops_per_elem` forward FLOPs per element and touching
// `tensors_in` + `tensors_out` streams of `elems` elements each.
[[nodiscard]] Layer MakeVector(std::string name, double elems,
                               double flops_per_elem, double tensors_in,
                               double tensors_out, int dt, bool training,
                               double stored_bytes, bool attn_stash = false,
                               double weight_elems = 0.0);

}  // namespace calculon
