// Per-layer cost primitives of the transformer block (Fig. 1).
//
// A Layer records, for one microbatch on one processor, the forward and
// backward FLOPs, the tier-1 memory traffic, the bytes of activations that
// must be stashed for the backward pass, and the weight / gradient /
// optimizer footprints. Layers are pure data; the processor model turns
// them into time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/processor.h"

namespace calculon {

struct Layer {
  std::string name;
  ComputeKind kind = ComputeKind::kMatrix;

  // Per-microbatch compute and tier-1 traffic.
  Flops fw_flops;
  Bytes fw_bytes;
  Flops bw_flops;  // grad wrt inputs + grad wrt weights
  Bytes bw_bytes;

  // Bytes stashed at forward time for this layer's backward.
  Bytes act_stored;
  // True when the stash is one of the sequence-squared attention tensors
  // that selective ("attn-only") recomputation drops and re-derives.
  bool attn_stash = false;

  // Per-processor weight footprints (microbatch-independent).
  double params = 0.0;  // learnable parameter count
  Bytes weight_bytes;
  Bytes weight_grad_bytes;
  Bytes optimizer_bytes;
};

// Factory helpers. All sizes are element counts; `dt` is bytes per element.

// The (M x K) * (K x N) shape of a GEMM, in elements.
struct GemmShape {
  double m = 0.0;
  double k = 0.0;
  double n = 0.0;
};

// Shape of an element-wise / normalization layer: `elems` elements with
// `flops_per_elem` forward FLOPs each, streaming `tensors_in` + `tensors_out`
// tensors of `elems` elements through memory.
struct VectorShape {
  double elems = 0.0;
  double flops_per_elem = 0.0;  // unit-ok: per-element density, not a total
  double tensors_in = 0.0;
  double tensors_out = 0.0;
};

// GEMM computing (M x K) * (K x N). Stores its input (M*K elements) unless
// `stored_input_elems` overrides it (sequence-parallel sharded stash).
[[nodiscard]] Layer MakeLinear(std::string name, const GemmShape& shape,
                               int dt, bool bias, bool training,
                               double stored_input_elems = -1.0);

// Batched GEMM: `batches` independent (M x K) * (K x N) products. Weights
// are activations here (no learnable state). `stored_elems` is the stash.
[[nodiscard]] Layer MakeBatchMatmul(std::string name, double batches,
                                    const GemmShape& shape, int dt,
                                    bool training, double stored_elems,
                                    bool attn_stash);

// Element-wise / normalization layer over `shape.elems` elements.
[[nodiscard]] Layer MakeVector(std::string name, const VectorShape& shape,
                               int dt, bool training, Bytes stored_bytes,
                               bool attn_stash = false,
                               double weight_elems = 0.0);

}  // namespace calculon
