// The Calculon core: a single analytical calculation of time and resource
// usage for one (application, execution, system) triple (Section 2.4).
//
// The calculation is allocation-light and takes microseconds, which is what
// lets the search engines sweep millions of configurations (Section 5).
#pragma once

#include "core/stats.h"
#include "hw/system.h"
#include "models/application.h"
#include "models/execution.h"
#include "util/error.h"

namespace calculon {

// Runs the full performance estimation. Returns Stats on success or the
// infeasibility reason (bad partition, memory overflow, ...) otherwise.
// `exec.num_procs` must equal `sys.num_procs`.
[[nodiscard]] Result<Stats> CalculatePerformance(const Application& app,
                                                 const Execution& exec,
                                                 const System& sys);

// Model FLOPs per sample (forward + backward GEMM work of the full model,
// excluding recomputation), the numerator of MFU.
[[nodiscard]] Flops ModelFlopsPerSample(const Application& app,
                                        bool training);

}  // namespace calculon
