#include "core/block.h"

#include "util/check.h"

namespace calculon {
namespace {

// Forward FLOPs per element for the vector layers.
constexpr double kLayerNormFlops = 5.0;
constexpr double kSoftmaxFlops = 5.0;
constexpr double kGeluFlops = 8.0;
constexpr double kDropoutFlops = 2.0;
constexpr double kResidualFlops = 1.0;

// Kernel fusion halves the tier-1 round trips of an element-wise layer by
// folding it into the producing GEMM's epilogue.
void Fuse(Layer& layer, bool drop_stash) {
  layer.fw_bytes *= 0.5;
  layer.bw_bytes *= 0.5;
  if (drop_stash) {
    layer.act_stored = Bytes(0.0);
    layer.attn_stash = false;
  }
}

}  // namespace

Flops BlockModel::FwFlops() const {
  Flops sum;
  for (const Layer& l : layers) sum += l.fw_flops;
  return sum;
}

Flops BlockModel::BwFlops() const {
  Flops sum;
  for (const Layer& l : layers) sum += l.bw_flops;
  return sum;
}

Bytes BlockModel::ActStoredBytes(Recompute mode) const {
  if (mode == Recompute::kFull) return block_input_bytes;
  Bytes sum;
  for (const Layer& l : layers) {
    if (mode == Recompute::kAttnOnly && l.attn_stash) continue;
    sum += l.act_stored;
  }
  return sum;
}

Bytes BlockModel::WeightBytes() const {
  Bytes sum;
  for (const Layer& l : layers) sum += l.weight_bytes;
  return sum;
}

Bytes BlockModel::WeightGradBytes() const {
  Bytes sum;
  for (const Layer& l : layers) sum += l.weight_grad_bytes;
  return sum;
}

Bytes BlockModel::OptimizerBytes() const {
  Bytes sum;
  for (const Layer& l : layers) sum += l.optimizer_bytes;
  return sum;
}

double BlockModel::WeightParams() const {
  double params = 0.0;
  for (const Layer& l : layers) params += l.params;
  return params;
}

BlockModel BuildBlock(const Application& app, const Execution& exec) {
  // The caller contract: exec already validated against app (divisibility,
  // option compatibility). These are the shards BuildBlock divides by.
  CALC_DCHECK(exec.tensor_par >= 1 && exec.microbatch >= 1 &&
                  exec.datatype_bytes > 0,
              "t=%lld microbatch=%lld dtb=%d",
              static_cast<long long>(exec.tensor_par),
              static_cast<long long>(exec.microbatch), exec.datatype_bytes);
  CALC_DCHECK(app.attn_heads % exec.tensor_par == 0 &&
                  app.feedforward % exec.tensor_par == 0,
              "t=%lld does not shard heads=%lld / ff=%lld",
              static_cast<long long>(exec.tensor_par),
              static_cast<long long>(app.attn_heads),
              static_cast<long long>(app.feedforward));
  const double b = static_cast<double>(exec.microbatch);
  const double s = static_cast<double>(app.seq_size);
  const double h = static_cast<double>(app.hidden);
  const double f = static_cast<double>(app.feedforward);
  const double a = static_cast<double>(app.attn_heads);
  const double e = static_cast<double>(app.attn_size);
  const double t = static_cast<double>(exec.tensor_par);
  const int dt = exec.datatype_bytes;
  const bool train = exec.training;
  // Sequence parallelism shards the vector layers over the TP group.
  const double sp = exec.seq_par ? t : 1.0;
  const double attn_width = a * e;  // attention projection width (== h)

  BlockModel block;
  auto& L = block.layers;
  L.reserve(16);

  const double resid_elems = b * (s / sp) * h;  // sharded residual stream

  // --- Attention half ---
  L.push_back(MakeVector("attn_norm",
                         {resid_elems, kLayerNormFlops, 1.0, 1.0}, dt, train,
                         Bytes(dt * resid_elems), false, 2.0 * h));
  // QKV projection consumes the (gathered) full-sequence tensor. Under
  // sequence parallelism only the sequence shard is stashed (the gathered
  // copy is transient workspace); the optional AG-redo repeats the gather
  // in the backward pass (time for memory is already paid).
  const double qkv_stash = exec.seq_par ? b * s * h / t : b * s * h;
  L.push_back(MakeLinear("attn_qkv", {b * s, h, 3.0 * attn_width / t}, dt,
                         /*bias=*/true, train, qkv_stash));
  // Q*K^T; the stash is Q, K and V (the inputs selective recomputation
  // re-derives the attention internals from).
  L.push_back(MakeBatchMatmul("attn_qkt", b * a / t, {s, e, s}, dt, train,
                              3.0 * b * s * attn_width / t,
                              /*attn_stash=*/false));
  const double score_elems = b * (a / t) * s * s;
  L.push_back(MakeVector("attn_softmax",
                         {score_elems, kSoftmaxFlops, 1.0, 1.0}, dt, train,
                         Bytes(dt * score_elems), /*attn_stash=*/true));
  // Dropout keeps a 1-byte mask per element.
  L.push_back(MakeVector("attn_dropout",
                         {score_elems, kDropoutFlops, 1.0, 1.0}, dt, train,
                         Bytes(1.0 * score_elems), /*attn_stash=*/true));
  // Scores * V; stashes its score input (softmax-dropout output).
  L.push_back(MakeBatchMatmul("attn_av", b * a / t, {s, s, e}, dt, train,
                              score_elems, /*attn_stash=*/true));
  L.push_back(MakeLinear("attn_proj", {b * s, attn_width / t, h}, dt,
                         /*bias=*/true, train, b * s * attn_width / t));
  L.push_back(MakeVector("attn_out_drop",
                         {resid_elems, kDropoutFlops, 1.0, 1.0}, dt, train,
                         Bytes(1.0 * resid_elems)));
  L.push_back(MakeVector("attn_residual",
                         {resid_elems, kResidualFlops, 2.0, 1.0}, dt, train,
                         Bytes(0.0)));

  // --- MLP half ---
  L.push_back(MakeVector("mlp_norm", {resid_elems, kLayerNormFlops, 1.0, 1.0},
                         dt, train, Bytes(dt * resid_elems), false, 2.0 * h));
  const double mlp_stash = exec.seq_par ? b * s * h / t : b * s * h;
  L.push_back(MakeLinear("mlp_fc1", {b * s, h, f / t}, dt, /*bias=*/true,
                         train, mlp_stash));
  const double gelu_elems = b * s * f / t;
  L.push_back(MakeVector("mlp_gelu", {gelu_elems, kGeluFlops, 1.0, 1.0}, dt,
                         train, Bytes(dt * gelu_elems)));
  L.push_back(MakeLinear("mlp_fc2", {b * s, f / t, h}, dt, /*bias=*/true,
                         train, b * s * f / t));
  L.push_back(MakeVector("mlp_dropout",
                         {resid_elems, kDropoutFlops, 1.0, 1.0}, dt, train,
                         Bytes(1.0 * resid_elems)));
  L.push_back(MakeVector("mlp_residual",
                         {resid_elems, kResidualFlops, 2.0, 1.0}, dt, train,
                         Bytes(0.0)));

  if (exec.fused_activation) {
    for (Layer& layer : L) {
      if (layer.name == "attn_residual" || layer.name == "mlp_residual") {
        Fuse(layer, /*drop_stash=*/false);
      } else if (layer.name == "attn_softmax" ||
                 layer.name == "attn_dropout" || layer.name == "attn_av" ||
                 layer.name == "attn_out_drop" ||
                 layer.name == "mlp_dropout" || layer.name == "mlp_gelu") {
        // Flash-style fusion: the sequence-squared attention tensors,
        // dropout masks and the GeLU input are regenerated inside the fused
        // backward kernels instead of being stashed.
        Fuse(layer, /*drop_stash=*/true);
      }
    }
  }

  // Layers re-executed in backward under attention-only recomputation:
  // Q*K^T, softmax and the attention dropout (from the stashed Q/K/V).
  for (std::size_t i = 0; i < L.size(); ++i) {
    if (L[i].name == "attn_qkt" || L[i].name == "attn_softmax" ||
        L[i].name == "attn_dropout") {
      block.attn_recompute_layers.push_back(i);
    }
  }

  // --- Tensor-parallel communication ---
  const Bytes tp_bytes = Bytes(dt * b * s * h);
  if (exec.tensor_par > 1) {
    if (exec.seq_par) {
      // Megatron sequence parallelism: all-gather before each GEMM pair,
      // reduce-scatter after it, in both passes.
      block.tp_fw = {{Collective::kAllGather, tp_bytes},
                     {Collective::kReduceScatter, tp_bytes},
                     {Collective::kAllGather, tp_bytes},
                     {Collective::kReduceScatter, tp_bytes}};
      block.tp_bw = block.tp_fw;
      if (exec.seq_par_ag_redo) {
        block.tp_bw_extra = {{Collective::kAllGather, tp_bytes},
                             {Collective::kAllGather, tp_bytes}};
      }
    } else if (exec.tp_rs_ag) {
      block.tp_fw = {{Collective::kReduceScatter, tp_bytes},
                     {Collective::kAllGather, tp_bytes},
                     {Collective::kReduceScatter, tp_bytes},
                     {Collective::kAllGather, tp_bytes}};
      block.tp_bw = block.tp_fw;
    } else {
      block.tp_fw = {{Collective::kAllReduce, tp_bytes},
                     {Collective::kAllReduce, tp_bytes}};
      block.tp_bw = block.tp_fw;
    }
  }

  block.block_input_bytes = Bytes(dt * b * s * h / sp);
  // The tensor crossing a pipeline boundary: sharded when the residual
  // stream is sequence-parallel or when PP applies RS before the p2p send.
  const double pp_shard = (exec.seq_par || exec.pp_rs_ag) ? t : 1.0;
  block.pp_output_bytes = Bytes(dt * b * s * h / pp_shard);

  // Transient gradient working set: the largest simultaneous gradient
  // tensors (MLP inner, residual stream, attention scores).
  block.act_grad_working_bytes =
      train ? Bytes(dt * (gelu_elems + b * s * h + score_elems)) : Bytes(0.0);

  return block;
}

}  // namespace calculon
