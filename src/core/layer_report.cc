#include "core/layer_report.h"

#include "core/block.h"
#include "util/strings.h"
#include "util/units.h"

namespace calculon {

Table LayerReport(const Application& app, const Execution& exec,
                  const System& sys) {
  const BlockModel block = BuildBlock(app, exec);
  const Processor& proc = sys.proc();
  Table table({"layer", "kind", "fw flops", "fw bytes", "fw time", "bw time",
               "stash", "weights"});
  Seconds fw_total;
  Seconds bw_total;
  for (const Layer& l : block.layers) {
    const Seconds fw = proc.OpTime(l.kind, l.fw_flops, l.fw_bytes);
    const Seconds bw = proc.OpTime(l.kind, l.bw_flops, l.bw_bytes);
    fw_total += fw;
    bw_total += bw;
    table.AddRow({l.name, l.kind == ComputeKind::kMatrix ? "matrix" : "vector",
                  FormatFlopCount(l.fw_flops), FormatBytes(l.fw_bytes),
                  FormatTime(fw), FormatTime(bw), FormatBytes(l.act_stored),
                  FormatBytes(l.weight_bytes)});
  }
  table.AddRule();
  const Network* tp_net = sys.NetworkForSpan(exec.tensor_par);
  Seconds comm_total;
  if (tp_net != nullptr) {
    int idx = 0;
    for (const CommOp& op : block.tp_fw) {
      const Seconds time =
          tp_net->CollectiveTime(op.op, exec.tensor_par, op.bytes);
      comm_total += time;
      table.AddRow({StrFormat("tp_fw_%d (%s)", idx++, ToString(op.op)),
                    "comm", "-", FormatBytes(op.bytes), FormatTime(time), "-",
                    "-", "-"});
    }
  }
  table.AddRule();
  table.AddRow({"total (one block, one microbatch)", "",
                FormatFlopCount(block.FwFlops()), "", FormatTime(fw_total),
                FormatTime(bw_total),
                FormatBytes(block.ActStoredBytes(exec.recompute)),
                FormatBytes(block.WeightBytes())});
  (void)comm_total;
  return table;
}

}  // namespace calculon
