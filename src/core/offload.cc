#include "core/offload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace calculon {

OffloadResult ComputeOffload(const OffloadInputs& in, const Memory& mem2) {
  CALC_DCHECK(in.blocks_per_proc >= 1 && in.microbatches >= 1,
              "blocks_per_proc=%lld microbatches=%lld",
              static_cast<long long>(in.blocks_per_proc),
              static_cast<long long>(in.microbatches));
  CALC_DCHECK(in.weight_block >= Bytes(0.0) &&
                  in.weight_grad_block >= Bytes(0.0) &&
                  in.act_block >= Bytes(0.0) && in.optim_block >= Bytes(0.0),
              "negative block size");
  // NaN-tolerant (!(x < 0)): degenerate systems (zero-bandwidth tiers)
  // produce non-finite phase durations that must flow through to the perf
  // model's final non-finite screen, not trap here.
  CALC_DCHECK(!(in.fw_block_time < Seconds(0.0)) &&
                  !(in.bw_block_time < Seconds(0.0)) &&
                  !(in.fw_phase_total < Seconds(0.0)) &&
                  !(in.bw_phase_total < Seconds(0.0)) &&
                  !(in.optim_phase_total < Seconds(0.0)),
              "negative phase duration");
  CALC_DCHECK(in.act_in_flight >= 0.0, "act_in_flight = %g", in.act_in_flight);
  OffloadResult out;
  const double bpp = static_cast<double>(in.blocks_per_proc);
  const double nm = static_cast<double>(in.microbatches);

  // Per-block traffic while computing one block for one microbatch.
  Bytes fw_block_bytes;  // moved during a block's forward compute
  Bytes bw_block_bytes;  // moved during a block's backward compute
  Bytes optim_bytes;     // moved during the optimizer step

  if (in.weights) {
    // Fig. 8: weights are prefetched per block as compute walks the chunk,
    // once per microbatch in each pass; gradients stream out in backward.
    out.tier2_weights = (in.weight_block + in.weight_grad_block) * bpp;
    fw_block_bytes += in.weight_block;
    bw_block_bytes += in.weight_block + in.weight_grad_block;
    out.hbm_weights = 3.0 * in.weight_block;  // current/prefetch/write-back
    out.hbm_weight_grads = 3.0 * in.weight_grad_block;
  }
  if (in.activations) {
    // Stashes are offloaded after forward and prefetched before backward.
    out.tier2_acts = in.act_block * bpp * in.act_in_flight;
    fw_block_bytes += in.act_block;
    bw_block_bytes += in.act_block;
    out.hbm_acts = 3.0 * in.act_block;
  }
  if (in.optimizer) {
    out.tier2_optimizer = in.optim_block * bpp;
    // The step streams optimizer state in and back out once per batch.
    optim_bytes = 2.0 * in.optim_block * bpp;
    out.hbm_optimizer = 2.0 * in.optim_block;
  }

  const Bytes fw_traffic = fw_block_bytes * bpp * nm;
  const Bytes bw_traffic = bw_block_bytes * bpp * nm;
  out.traffic_bytes = fw_traffic + bw_traffic + optim_bytes;
  if (out.traffic_bytes <= Bytes(0.0)) return out;

  // Eq. 1: the bandwidth that hides a block's prefetch/write-back under
  // that block's compute. The optimizer stream is excluded — an offloaded
  // optimizer step is inherently tier-2-bound and simply runs longer
  // (captured as exposed time below), rather than demanding HBM-class
  // bandwidth.
  auto demand = [](Bytes bytes, Seconds seconds) {
    return seconds > Seconds(0.0) ? bytes / seconds : BytesPerSecond(0.0);
  };
  out.required_bw = std::max(demand(fw_block_bytes, in.fw_block_time),
                             demand(bw_block_bytes, in.bw_block_time));

  const BytesPerSecond bw2 = mem2.EffectiveBandwidth(out.traffic_bytes);
  out.busy_time = mem2.AccessTime(out.traffic_bytes);

  // Exposure per phase: traffic beyond what the phase duration can hide.
  auto exposed = [&](Bytes bytes, Seconds window) {
    if (bytes <= Bytes(0.0)) return Seconds(0.0);
    if (bw2 <= BytesPerSecond(0.0)) {
      return bytes / BytesPerSecond(1e-30);  // absent tier: effectively inf
    }
    return std::max(Seconds(0.0), bytes / bw2 - window);
  };
  out.exposed_time = exposed(fw_traffic, in.fw_phase_total) +
                     exposed(bw_traffic, in.bw_phase_total) +
                     exposed(optim_bytes, in.optim_phase_total);
  // Postconditions the audit relies on: offloading can only add time, and
  // the Eq. 1 bandwidth demand is never negative. Written NaN-tolerantly —
  // non-finite values from degenerate inputs flow to the model's screen.
  CALC_DCHECK(!(out.exposed_time < Seconds(0.0)) &&
                  !(out.busy_time < Seconds(0.0)),
              "exposed=%g busy=%g",
              out.exposed_time.raw(),  // unit-ok: diagnostic message
              out.busy_time.raw());    // unit-ok: diagnostic message
  CALC_DCHECK(!(out.required_bw < BytesPerSecond(0.0)), "required_bw = %g",
              out.required_bw.raw());  // unit-ok: diagnostic message
  return out;
}

}  // namespace calculon
