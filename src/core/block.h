// Builds the layer sequence of one transformer block (Fig. 1) for a given
// application and execution strategy, together with the tensor-parallel
// communication operations attached to the block.
//
// Calculon exploits the fact that all blocks are identical: one block model
// is built and evaluated, and the result is reused for every block, which is
// what makes a full calculation take microseconds.
#pragma once

#include <cstddef>
#include <vector>

#include "core/layers.h"
#include "hw/network.h"
#include "models/application.h"
#include "models/execution.h"

namespace calculon {

// One communication operation over the tensor-parallel group.
struct CommOp {
  Collective op;
  Bytes bytes;  // full tensor size
};

struct BlockModel {
  std::vector<Layer> layers;

  // Per-microbatch TP communication in forward and backward order.
  std::vector<CommOp> tp_fw;
  std::vector<CommOp> tp_bw;
  // Extra backward-side TP communication from seq-par all-gather redo.
  std::vector<CommOp> tp_bw_extra;

  // Marks for recomputation: indices into `layers` re-executed in the
  // backward pass under attention-only recomputation.
  std::vector<std::size_t> attn_recompute_layers;

  // Stash of the block input, the only activation kept under full
  // recomputation (per microbatch in flight).
  Bytes block_input_bytes;

  // Activation tensor crossing a pipeline-stage boundary (per microbatch).
  Bytes pp_output_bytes;

  // Transient activation-gradient working set during backward.
  Bytes act_grad_working_bytes;

  // --- Aggregates (per microbatch, one block, one processor) ---
  [[nodiscard]] Flops FwFlops() const;
  [[nodiscard]] Flops BwFlops() const;
  // Stored activation bytes per microbatch under the given recompute mode.
  [[nodiscard]] Bytes ActStoredBytes(Recompute mode) const;
  [[nodiscard]] Bytes WeightBytes() const;
  [[nodiscard]] Bytes WeightGradBytes() const;
  [[nodiscard]] Bytes OptimizerBytes() const;
  [[nodiscard]] double WeightParams() const;  // learnable parameter count
};

// Constructs the block model. `exec` must already satisfy
// `exec.Validate(app)`.
[[nodiscard]] BlockModel BuildBlock(const Application& app,
                                    const Execution& exec);

}  // namespace calculon
