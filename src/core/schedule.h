// Discrete pipeline-schedule construction (Fig. 2).
//
// The analytical model uses closed forms for the pipeline bubble and the
// in-flight activation count. This module builds the actual event-level
// schedule — every (microbatch, chunk) forward/backward task on every
// stage, with point-to-point dependencies — the way the interleaved 1F1B
// (or GPipe-like) schedule executes it. It serves three purposes:
//
//   1. cross-validation: the simulated makespan and peak in-flight count
//      must track the closed forms (tested in schedule_test.cc);
//   2. visualization: Fig. 2-style ASCII timelines (pipeline_timeline
//      example);
//   3. a substrate for future schedule variants beyond the closed forms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/quantity.h"

namespace calculon {

enum class TaskKind { kForward, kBackward };

struct ScheduleTask {
  TaskKind kind = TaskKind::kForward;
  std::int64_t stage = 0;       // pipeline stage (processor group)
  std::int64_t chunk = 0;       // local chunk index (0 .. interleave-1)
  std::int64_t microbatch = 0;  // microbatch id
  Seconds start;
  Seconds end;
};

struct ScheduleParams {
  std::int64_t stages = 1;
  std::int64_t interleave = 1;
  std::int64_t microbatches = 1;
  bool one_f_one_b = true;  // false: all-forwards-then-backwards (GPipe)
  Seconds fw_chunk_time{1.0};  // forward time of one chunk, one microbatch
  Seconds bw_chunk_time{2.0};  // backward (incl. recompute) per chunk
  Seconds p2p_time{0.0};       // stage-boundary transfer time
};

struct ScheduleResult {
  std::vector<ScheduleTask> tasks;  // sorted by (stage, start)
  Seconds makespan;
  // Per-stage idle (bubble) time within the makespan.
  std::vector<Seconds> stage_idle;
  // Peak number of microbatches with live forward stashes on any stage
  // (a forward stash lives from the chunk's forward until its backward).
  std::int64_t peak_in_flight = 0;

  [[nodiscard]] Seconds TotalIdle() const;
  // ASCII timeline, one row per stage (Fig. 2 style). `width` columns.
  [[nodiscard]] std::string Render(int width = 100) const;
  // Chrome trace-event JSON (load in chrome://tracing or Perfetto): one
  // track per stage, one slice per task. `time_scale` converts model
  // seconds to trace microseconds (default: 1 model second = 1 trace ms so
  // short schedules stay readable).
  [[nodiscard]] std::string TraceJson(
      double time_scale = 1e3) const;  // unit-ok: conversion factor
};

// Builds and "executes" the schedule with a greedy dependency-driven
// policy: a stage that goes idle starts the highest-priority ready task
// (1F1B prefers backwards; GPipe runs all forwards first).
[[nodiscard]] ScheduleResult BuildPipelineSchedule(const ScheduleParams& p);

}  // namespace calculon
