// calculon-audit: model self-audit driver.
//
// Sweeps every application preset against every system preset (plus any
// JSON configurations under --config-dir) and asserts the analytic
// invariants of analysis/audit.h over a sampled execution grid. Exits
// non-zero when any invariant is violated; runs under ctest in the plain
// and sanitizer-instrumented builds.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/audit.h"
#include "dist/drivers.h"
#include "hw/presets.h"
#include "json/json.h"
#include "models/presets.h"
#include "obs/cli_options.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/threadpool.h"
#include "testing/fault_injection.h"
#include "util/run_context.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using calculon::Application;
using calculon::System;
using calculon::analysis::AuditOptions;
using calculon::analysis::AuditReport;
using calculon::analysis::AuditViolation;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: calculon-audit [options]\n"
      "  --apps a,b,...      audit only these applications\n"
      "  --systems x,y,...   audit only these systems\n"
      "  --config-dir DIR    also audit DIR/applications/*.json and\n"
      "                      DIR/systems/*.json\n"
      "  --procs n1,n2,...   system sizes to audit at (default ladder)\n"
      "  --max-splits N      (t,p,d) factorizations sampled per size\n"
      "  --threads N         worker threads (default: hardware)\n"
      "  --workers N         run pairs in N supervised worker processes\n"
      "                      (crash/hang isolation; see docs/robustness.md)\n"
      "  --shard-size N      pairs dispatched to a worker at a time\n"
      "  --hang-timeout S    SIGKILL a worker silent for S seconds\n"
      "  --worker-logs DIR   capture worker stderr to DIR/worker-<n>.log\n"
      "  --verbose           print a result row per (app, system) pair\n"
      "  --deadline S        stop after S wall-clock seconds (partial audit)\n"
      "  --failure-budget N  stop after N isolated evaluation failures\n"
      "  --faults SPEC       deterministic fault injection, e.g.\n"
      "                      seed=42,throw=0.02,error=0.02 (also read from\n"
      "                      the CALCULON_FAULTS environment variable)\n"
      "  --checkpoint PATH   journal completed pairs to PATH\n"
      "  --resume            skip pairs already journaled in --checkpoint\n"
      "%s"
      "exit codes: 0 clean, 1 invariant violations, 2 usage error,\n"
      "            3 degraded (stopped early or isolated failures)\n",
      calculon::obs::ObsCliOptions::UsageLines());
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// A sweep target with the label it is known by on the command line — the
// preset key or the config file's stem (System::name() is the hardware
// family, e.g. "h100", and is shared by several presets).
template <typename T>
struct Named {
  std::string label;
  T value;
};

template <typename T>
bool ContainsLabel(const std::vector<Named<T>>& items,
                   const std::string& label) {
  for (const Named<T>& item : items) {
    if (item.label == label) return true;
  }
  return false;
}

std::uint64_t Fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr const char* kCheckpointFormat = "calculon-audit-checkpoint-v1";

using calculon::analysis::ReportFromJson;
using calculon::analysis::ReportToJson;

// Loads every *.json under dir (if it exists) through `parse`, skipping
// file stems that are already present (preset and config names overlap).
template <typename T, typename Parse>
void LoadConfigs(const std::string& dir, std::vector<Named<T>>* items,
                 Parse parse) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) return;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    if (ContainsLabel(*items, path.stem().string())) continue;
    items->push_back(Named<T>{path.stem().string(),
                              parse(calculon::json::ParseFile(path.string()))});
  }
}

}  // namespace

int main(int argc, char** argv) try {
  std::vector<std::string> want_apps;
  std::vector<std::string> want_systems;
  std::string config_dir;
  AuditOptions options;
  unsigned threads = 0;
  calculon::dist::DistOptions dist;
  dist.shard_size = 1;  // audit pairs are coarse; retry at pair granularity
  bool verbose = false;
  double deadline_s = 0.0;
  long long failure_budget = 0;
  std::string faults_spec;
  std::string checkpoint_path;
  bool resume = false;
  calculon::obs::ObsCliOptions obs_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "calculon-audit: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_int = [&](const std::string& value) -> long long {
      try {
        std::size_t used = 0;
        const long long n = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return n;
      } catch (const std::exception&) {
        std::fprintf(stderr, "calculon-audit: %s expects an integer, got %s\n",
                     arg.c_str(), value.c_str());
        std::exit(2);
      }
    };
    if (arg == "--apps") {
      want_apps = SplitCsv(next());
    } else if (arg == "--systems") {
      want_systems = SplitCsv(next());
    } else if (arg == "--config-dir") {
      config_dir = next();
    } else if (arg == "--procs") {
      for (const std::string& n : SplitCsv(next())) {
        options.proc_counts.push_back(parse_int(n));
      }
    } else if (arg == "--max-splits") {
      options.max_splits = static_cast<int>(parse_int(next()));
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(parse_int(next()));
    } else if (arg == "--workers") {
      dist.workers = static_cast<int>(parse_int(next()));
      if (dist.workers < 0) {
        std::fprintf(stderr, "calculon-audit: --workers must be >= 0\n");
        return 2;
      }
    } else if (arg == "--shard-size") {
      const long long n = parse_int(next());
      if (n <= 0) {
        std::fprintf(stderr, "calculon-audit: --shard-size must be > 0\n");
        return 2;
      }
      dist.shard_size = static_cast<std::uint64_t>(n);
    } else if (arg == "--hang-timeout") {
      try {
        std::size_t used = 0;
        const std::string value = next();
        dist.hang_timeout_s = std::stod(value, &used);
        if (used != value.size() || dist.hang_timeout_s <= 0.0) {
          throw std::invalid_argument(value);
        }
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "calculon-audit: --hang-timeout expects seconds > 0\n");
        return 2;
      }
    } else if (arg == "--worker-logs") {
      dist.worker_log_dir = next();
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--deadline") {
      try {
        std::size_t used = 0;
        const std::string value = next();
        deadline_s = std::stod(value, &used);
        if (used != value.size() || deadline_s <= 0.0) {
          throw std::invalid_argument(value);
        }
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "calculon-audit: --deadline expects seconds > 0\n");
        return 2;
      }
    } else if (arg == "--failure-budget") {
      failure_budget = parse_int(next());
    } else if (arg == "--faults") {
      faults_spec = next();
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (obs_options.Consume(arg, [&] { return next(); })) {
      // observability flags: --trace / --metrics / --progress
    } else {
      std::fprintf(stderr, "calculon-audit: unknown option %s\n",
                   arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  // Assemble the sweep targets: all presets, plus JSON configurations.
  std::vector<Named<Application>> apps;
  for (const std::string& name : calculon::presets::ApplicationNames()) {
    apps.push_back({name, calculon::presets::ApplicationByName(name)});
  }
  std::vector<Named<System>> systems;
  for (const std::string& name : calculon::presets::SystemNames()) {
    systems.push_back({name, calculon::presets::SystemByName(name)});
  }
  if (!config_dir.empty()) {
    if (!std::filesystem::is_directory(config_dir)) {
      std::fprintf(stderr, "calculon-audit: --config-dir %s is not a directory\n",
                   config_dir.c_str());
      return 2;
    }
    LoadConfigs<Application>(config_dir + "/applications", &apps,
                             [](const calculon::json::Value& v) {
                               return Application::FromJson(v);
                             });
    LoadConfigs<System>(config_dir + "/systems", &systems,
                        [](const calculon::json::Value& v) {
                          return System::FromJson(v);
                        });
  }
  auto filter = [](auto* items, const std::vector<std::string>& want) {
    if (want.empty()) return;
    for (const std::string& name : want) {
      if (!ContainsLabel(*items, name)) {
        std::fprintf(stderr, "calculon-audit: unknown name %s\n",
                     name.c_str());
        std::exit(2);
      }
    }
    std::erase_if(*items, [&](const auto& item) {
      return std::find(want.begin(), want.end(), item.label) == want.end();
    });
  };
  filter(&apps, want_apps);
  filter(&systems, want_systems);

  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "calculon-audit: --resume requires --checkpoint\n");
    return 2;
  }

  // Resilience context: SIGINT/SIGTERM request a graceful stop (finish the
  // in-flight pair, journal, report partial results); deadline and failure
  // budget stop the same way.
  calculon::RunContext ctx;
  ctx.WatchSignals(true);
  calculon::RunContext::InstallSigintHandler();
  if (deadline_s > 0.0) ctx.SetDeadline(deadline_s);
  if (failure_budget > 0) {
    ctx.set_failure_budget(static_cast<std::uint64_t>(failure_budget));
  }
  auto& faults = calculon::testing::FaultInjector::Global();
  if (!faults_spec.empty()) {
    faults.Configure(calculon::testing::FaultPlan::FromSpec(faults_spec));
  } else {
    const auto env_plan = calculon::testing::FaultPlan::FromEnv();
    if (env_plan.enabled()) faults.Configure(env_plan);
  }
  obs_options.Activate();

  // The math helpers first: everything else samples the grid through them.
  AuditReport total = calculon::analysis::AuditMath();
  const std::uint64_t math_checks = total.checks;

  // One work item per (application, system) pair, spread across the pool.
  struct Pair {
    const Named<Application>* app;
    const Named<System>* sys;
    AuditReport report;
  };
  std::vector<Pair> pairs;
  for (const Named<Application>& app : apps) {
    for (const Named<System>& sys : systems) {
      pairs.push_back(Pair{&app, &sys, {}});
    }
  }

  // Fingerprint of the audit configuration; guards checkpoints against
  // replay into a different sweep.
  std::uint64_t fp = 0xcbf29ce484222325ULL;
  for (const Pair& pair : pairs) {
    fp = Fnv1a(fp, pair.app->label + "/" + pair.sys->label);
  }
  std::string procs_desc;
  for (std::int64_t n : options.proc_counts) {
    procs_desc += std::to_string(n) + ",";
  }
  fp = Fnv1a(fp, calculon::StrFormat("procs=%s max_splits=%d",
                                     procs_desc.c_str(), options.max_splits));
  const std::string fingerprint =
      calculon::StrFormat("%016llx", static_cast<unsigned long long>(fp));

  // done[i] != 0 means pairs[i].report is final (journaled or restored).
  std::vector<char> done(pairs.size(), 0);
  if (resume && std::filesystem::exists(checkpoint_path)) {
    const calculon::json::Value cp = calculon::json::ParseFile(checkpoint_path);
    if (cp.GetString("format", "") != kCheckpointFormat ||
        cp.at("fingerprint").AsString() != fingerprint) {
      std::fprintf(stderr,
                   "calculon-audit: %s is not a checkpoint of this sweep\n",
                   checkpoint_path.c_str());
      return 2;
    }
    const calculon::json::Value& cp_pairs = cp.at("pairs");
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const std::string key = pairs[i].app->label + "/" + pairs[i].sys->label;
      if (cp_pairs.contains(key)) {
        pairs[i].report = ReportFromJson(cp_pairs.at(key));
        done[i] = 1;
      }
    }
  }

  calculon::Mutex checkpoint_mutex;
  auto write_checkpoint = [&]() {
    // Caller holds checkpoint_mutex. Tmp-file + rename keeps the previous
    // journal intact if this write is interrupted.
    calculon::json::Value cp;
    cp["format"] = kCheckpointFormat;
    cp["fingerprint"] = fingerprint;
    calculon::json::Object journal;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (done[i] != 0) {
        journal[pairs[i].app->label + "/" + pairs[i].sys->label] =
            ReportToJson(pairs[i].report);
      }
    }
    cp["pairs"] = calculon::json::Value(std::move(journal));
    calculon::json::WriteFile(checkpoint_path, cp);  // atomic temp + rename
  };

  std::optional<calculon::obs::ProgressReporter> reporter;
  if (obs_options.progress) {
    calculon::obs::ProgressOptions popts;
    popts.interval_s = obs_options.progress_interval_s;
    popts.total = pairs.size();
    popts.label = "audit";
    reporter.emplace(&ctx, popts);
  }
  if (dist.active()) {
    // Supervised multi-process audit: each pair runs in a forked worker,
    // so a crash or hang inside the model quarantines that pair instead
    // of killing the audit. No ThreadPool exists before the forks.
    const auto& plan = faults.plan();
    if (plan.enabled()) dist.faults_spec = plan.ToSpec();
    dist.fallback_threads = threads;
    std::vector<calculon::dist::AuditPairSpec> specs;
    std::vector<std::size_t> orig;  // specs index -> pairs index
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (done[i] != 0) continue;
      specs.push_back(calculon::dist::AuditPairSpec{
          pairs[i].app->value, pairs[i].sys->value, pairs[i].sys->label,
          static_cast<std::uint64_t>(i) << 32});
      orig.push_back(i);
    }
    (void)calculon::dist::RunAuditSupervised(
        specs, options, dist, &ctx,
        [&](std::uint64_t j, const AuditReport& report) {
          const std::size_t i = orig[j];
          pairs[i].report = report;
          if (ctx.cancelled()) return;
          calculon::MutexLock lock(checkpoint_mutex);
          done[i] = 1;
          if (!checkpoint_path.empty()) write_checkpoint();
        });
  } else {
    calculon::ThreadPool pool(threads);
    pool.ParallelFor(pairs.size(), &ctx, [&](std::uint64_t i) {
      if (done[i] != 0) return;
      Pair& pair = pairs[i];
      CALC_TRACE_SPAN("audit", pair.app->label + "/" + pair.sys->label);
      AuditOptions pair_options = options;
      pair_options.context_label = pair.sys->label;
      pair_options.ctx = &ctx;
      pair_options.fault_key_base = i << 32;
      pair.report = calculon::analysis::AuditPair(
          pair.app->value, pair.sys->value, pair_options);
      // A pair that observed a stop mid-sweep is partial: keep its report
      // for this process's summary but leave it out of the journal so a
      // resumed run re-audits it in full.
      if (ctx.cancelled()) return;
      calculon::MutexLock lock(checkpoint_mutex);
      done[i] = 1;
      if (!checkpoint_path.empty()) write_checkpoint();
    });
  }
  if (reporter.has_value()) reporter->Stop();

  calculon::Table table(
      {"application", "system", "evals", "feasible", "checks", "violations"});
  for (Pair& pair : pairs) {
    if (verbose || !pair.report.ok()) {
      table.AddRow({pair.app->label, pair.sys->label,
                    std::to_string(pair.report.evaluations),
                    std::to_string(pair.report.feasible),
                    std::to_string(pair.report.checks),
                    std::to_string(pair.report.violations.size() +
                                   pair.report.dropped)});
    }
    total.Merge(std::move(pair.report));
  }
  if (table.num_rows() > 0) std::printf("%s", table.ToString().c_str());

  constexpr std::size_t kMaxPrinted = 50;
  for (std::size_t i = 0;
       i < total.violations.size() && i < kMaxPrinted; ++i) {
    const AuditViolation& v = total.violations[i];
    std::printf("VIOLATION [%s] %s: %s\n", v.invariant.c_str(),
                v.context.c_str(), v.detail.c_str());
  }
  if (total.violations.size() + total.dropped > kMaxPrinted) {
    std::printf("... and %llu more violations\n",
                static_cast<unsigned long long>(
                    total.violations.size() + total.dropped - kMaxPrinted));
  }

  std::printf(
      "audited %zu applications x %zu systems: %llu evaluations "
      "(%llu feasible), %llu invariant checks (%llu math), "
      "%llu violations\n",
      apps.size(), systems.size(),
      static_cast<unsigned long long>(total.evaluations),
      static_cast<unsigned long long>(total.feasible),
      static_cast<unsigned long long>(total.checks),
      static_cast<unsigned long long>(math_checks),
      static_cast<unsigned long long>(total.violations.size() +
                                      total.dropped));

  const calculon::RunStatus status = ctx.Snapshot();
  const bool all_pairs_done =
      std::all_of(done.begin(), done.end(), [](char d) { return d != 0; });
  if (status.degraded() || !all_pairs_done) {
    std::printf("run status: %s\n", status.Summary().c_str());
    for (const calculon::FailureRecord& record : status.failure_samples) {
      std::printf("FAILURE item=%llu worker=%u %s: %s\n",
                  static_cast<unsigned long long>(record.item), record.worker,
                  record.fingerprint.c_str(), record.reason.c_str());
    }
  }
  if (faults.enabled()) {
    std::printf("injected faults: %llu throws, %llu errors, %llu delays\n",
                static_cast<unsigned long long>(faults.injected_throws()),
                static_cast<unsigned long long>(faults.injected_errors()),
                static_cast<unsigned long long>(faults.injected_delays()));
  }
  obs_options.Finish();
  if (!total.ok()) return 1;
  if (status.degraded() || !all_pairs_done) return 3;
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "calculon-audit: %s\n", e.what());
  return 2;
}
