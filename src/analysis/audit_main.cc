// calculon-audit: model self-audit driver.
//
// Sweeps every application preset against every system preset (plus any
// JSON configurations under --config-dir) and asserts the analytic
// invariants of analysis/audit.h over a sampled execution grid. Exits
// non-zero when any invariant is violated; runs under ctest in the plain
// and sanitizer-instrumented builds.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/audit.h"
#include "hw/presets.h"
#include "json/json.h"
#include "models/presets.h"
#include "search/threadpool.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using calculon::Application;
using calculon::System;
using calculon::analysis::AuditOptions;
using calculon::analysis::AuditReport;
using calculon::analysis::AuditViolation;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: calculon-audit [options]\n"
      "  --apps a,b,...      audit only these applications\n"
      "  --systems x,y,...   audit only these systems\n"
      "  --config-dir DIR    also audit DIR/applications/*.json and\n"
      "                      DIR/systems/*.json\n"
      "  --procs n1,n2,...   system sizes to audit at (default ladder)\n"
      "  --max-splits N      (t,p,d) factorizations sampled per size\n"
      "  --threads N         worker threads (default: hardware)\n"
      "  --verbose           print a result row per (app, system) pair\n");
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// A sweep target with the label it is known by on the command line — the
// preset key or the config file's stem (System::name() is the hardware
// family, e.g. "h100", and is shared by several presets).
template <typename T>
struct Named {
  std::string label;
  T value;
};

template <typename T>
bool ContainsLabel(const std::vector<Named<T>>& items,
                   const std::string& label) {
  for (const Named<T>& item : items) {
    if (item.label == label) return true;
  }
  return false;
}

// Loads every *.json under dir (if it exists) through `parse`, skipping
// file stems that are already present (preset and config names overlap).
template <typename T, typename Parse>
void LoadConfigs(const std::string& dir, std::vector<Named<T>>* items,
                 Parse parse) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) return;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    if (ContainsLabel(*items, path.stem().string())) continue;
    items->push_back(Named<T>{path.stem().string(),
                              parse(calculon::json::ParseFile(path.string()))});
  }
}

}  // namespace

int main(int argc, char** argv) try {
  std::vector<std::string> want_apps;
  std::vector<std::string> want_systems;
  std::string config_dir;
  AuditOptions options;
  unsigned threads = 0;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "calculon-audit: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_int = [&](const std::string& value) -> long long {
      try {
        std::size_t used = 0;
        const long long n = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return n;
      } catch (const std::exception&) {
        std::fprintf(stderr, "calculon-audit: %s expects an integer, got %s\n",
                     arg.c_str(), value.c_str());
        std::exit(2);
      }
    };
    if (arg == "--apps") {
      want_apps = SplitCsv(next());
    } else if (arg == "--systems") {
      want_systems = SplitCsv(next());
    } else if (arg == "--config-dir") {
      config_dir = next();
    } else if (arg == "--procs") {
      for (const std::string& n : SplitCsv(next())) {
        options.proc_counts.push_back(parse_int(n));
      }
    } else if (arg == "--max-splits") {
      options.max_splits = static_cast<int>(parse_int(next()));
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(parse_int(next()));
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "calculon-audit: unknown option %s\n",
                   arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  // Assemble the sweep targets: all presets, plus JSON configurations.
  std::vector<Named<Application>> apps;
  for (const std::string& name : calculon::presets::ApplicationNames()) {
    apps.push_back({name, calculon::presets::ApplicationByName(name)});
  }
  std::vector<Named<System>> systems;
  for (const std::string& name : calculon::presets::SystemNames()) {
    systems.push_back({name, calculon::presets::SystemByName(name)});
  }
  if (!config_dir.empty()) {
    if (!std::filesystem::is_directory(config_dir)) {
      std::fprintf(stderr, "calculon-audit: --config-dir %s is not a directory\n",
                   config_dir.c_str());
      return 2;
    }
    LoadConfigs<Application>(config_dir + "/applications", &apps,
                             [](const calculon::json::Value& v) {
                               return Application::FromJson(v);
                             });
    LoadConfigs<System>(config_dir + "/systems", &systems,
                        [](const calculon::json::Value& v) {
                          return System::FromJson(v);
                        });
  }
  auto filter = [](auto* items, const std::vector<std::string>& want) {
    if (want.empty()) return;
    for (const std::string& name : want) {
      if (!ContainsLabel(*items, name)) {
        std::fprintf(stderr, "calculon-audit: unknown name %s\n",
                     name.c_str());
        std::exit(2);
      }
    }
    std::erase_if(*items, [&](const auto& item) {
      return std::find(want.begin(), want.end(), item.label) == want.end();
    });
  };
  filter(&apps, want_apps);
  filter(&systems, want_systems);

  // The math helpers first: everything else samples the grid through them.
  AuditReport total = calculon::analysis::AuditMath();
  const std::uint64_t math_checks = total.checks;

  // One work item per (application, system) pair, spread across the pool.
  struct Pair {
    const Named<Application>* app;
    const Named<System>* sys;
    AuditReport report;
  };
  std::vector<Pair> pairs;
  for (const Named<Application>& app : apps) {
    for (const Named<System>& sys : systems) {
      pairs.push_back(Pair{&app, &sys, {}});
    }
  }
  calculon::ThreadPool pool(threads);
  pool.ParallelFor(pairs.size(), [&](std::uint64_t i) {
    Pair& pair = pairs[i];
    AuditOptions pair_options = options;
    pair_options.context_label = pair.sys->label;
    pair.report = calculon::analysis::AuditPair(pair.app->value,
                                                pair.sys->value, pair_options);
  });

  calculon::Table table(
      {"application", "system", "evals", "feasible", "checks", "violations"});
  for (Pair& pair : pairs) {
    if (verbose || !pair.report.ok()) {
      table.AddRow({pair.app->label, pair.sys->label,
                    std::to_string(pair.report.evaluations),
                    std::to_string(pair.report.feasible),
                    std::to_string(pair.report.checks),
                    std::to_string(pair.report.violations.size() +
                                   pair.report.dropped)});
    }
    total.Merge(std::move(pair.report));
  }
  if (table.num_rows() > 0) std::printf("%s", table.ToString().c_str());

  constexpr std::size_t kMaxPrinted = 50;
  for (std::size_t i = 0;
       i < total.violations.size() && i < kMaxPrinted; ++i) {
    const AuditViolation& v = total.violations[i];
    std::printf("VIOLATION [%s] %s: %s\n", v.invariant.c_str(),
                v.context.c_str(), v.detail.c_str());
  }
  if (total.violations.size() + total.dropped > kMaxPrinted) {
    std::printf("... and %llu more violations\n",
                static_cast<unsigned long long>(
                    total.violations.size() + total.dropped - kMaxPrinted));
  }

  std::printf(
      "audited %zu applications x %zu systems: %llu evaluations "
      "(%llu feasible), %llu invariant checks (%llu math), "
      "%llu violations\n",
      apps.size(), systems.size(),
      static_cast<unsigned long long>(total.evaluations),
      static_cast<unsigned long long>(total.feasible),
      static_cast<unsigned long long>(total.checks),
      static_cast<unsigned long long>(math_checks),
      static_cast<unsigned long long>(total.violations.size() +
                                      total.dropped));
  return total.ok() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "calculon-audit: %s\n", e.what());
  return 2;
}
