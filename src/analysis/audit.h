// Model self-audit: sweeps the execution space of an (application, system)
// pair and asserts analytic invariants that must hold for every feasible
// configuration — time breakdowns sum to the reported batch time, memory
// tiers stay within capacity and match an independent recomputation from the
// block model, FLOPs are conserved across recomputation modes, offloading
// never makes a run faster than its no-offload twin, and the integer-math
// helpers round-trip. A violation means a model bug, not a property of the
// swept configuration.
//
// The audit recomputes expectations from the layer/block primitives rather
// than trusting the perf model's own aggregation, so the two code paths
// cross-check each other (the same idea as the paper's validation against
// measured Megatron runs, but applied internally and exhaustively).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/system.h"
#include "json/json.h"
#include "models/application.h"
#include "util/run_context.h"

namespace calculon::analysis {

// One failed invariant, with enough context to reproduce it.
struct AuditViolation {
  std::string invariant;  // e.g. "time-breakdown-sum"
  std::string context;    // app/system/execution coordinates
  std::string detail;     // the numbers that disagree
};

struct AuditReport {
  std::uint64_t evaluations = 0;  // CalculatePerformance calls made
  std::uint64_t feasible = 0;     // ... that produced Stats
  std::uint64_t checks = 0;       // individual invariant assertions
  std::uint64_t dropped = 0;      // violations beyond the recording cap
  std::vector<AuditViolation> violations;

  [[nodiscard]] bool ok() const {
    return violations.empty() && dropped == 0;
  }
  void Merge(AuditReport other);
};

struct AuditOptions {
  // System sizes to audit at (each becomes sys.WithNumProcs(n)). Empty
  // selects a default ladder up to the system's native size.
  std::vector<std::int64_t> proc_counts;
  // Cap on the (t, p, d) factorizations sampled per processor count; the
  // full list is strided evenly so small, large, and skewed splits all
  // appear.
  int max_splits = 24;
  // Relative tolerance for floating-point equality of independently
  // computed quantities.
  double rel_tol = 1e-9;
  // Cap on recorded violations per AuditPair call; the rest only count.
  int max_violations = 16;
  // Label used for the system in violation contexts. Empty uses
  // System::name(), which is the hardware family and may be shared by
  // several presets (e.g. "h100" for both h100_80g and h100_80g_offload).
  std::string context_label;
  // Optional resilience context: cancellation / deadline / failure budget
  // observed between system sizes and splits; evaluation exceptions and
  // model-bug Results (Infeasible::kBadConfig) become FailureRecords
  // instead of killing the audit. Injected faults (see
  // testing/fault_injection.h) are isolated the same way without being
  // counted as invariant violations.
  RunContext* ctx = nullptr;
  // Offset for the deterministic per-evaluation fault-injection key, so
  // concurrent (application, system) pairs occupy disjoint key ranges
  // (e.g. pair_index << 32).
  std::uint64_t fault_key_base = 0;
};

// Audits the integer-math helpers (ceil-div bounds, divisor enumeration and
// factor-triple round-trips) that the execution sweeps depend on.
[[nodiscard]] AuditReport AuditMath();

// Audits one (application, system) pair over a sampled execution grid.
[[nodiscard]] AuditReport AuditPair(const Application& app, const System& sys,
                                    const AuditOptions& options = {});

// Lossless AuditReport round-trip: the audit CLI's checkpoint journal
// format, also the dist wire format for supervised audit workers.
[[nodiscard]] json::Value ReportToJson(const AuditReport& report);
[[nodiscard]] AuditReport ReportFromJson(const json::Value& v);

}  // namespace calculon::analysis
