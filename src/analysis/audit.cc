#include "analysis/audit.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iterator>
#include <limits>
#include <optional>
#include <set>
#include <tuple>

#include "core/block.h"
#include "core/perf_model.h"
#include "core/pipeline.h"
#include "core/stats.h"
#include "util/threadpool.h"
#include "testing/fault_injection.h"
#include "util/mathutil.h"
#include "util/strings.h"

namespace calculon::analysis {

void AuditReport::Merge(AuditReport other) {
  evaluations += other.evaluations;
  feasible += other.feasible;
  checks += other.checks;
  dropped += other.dropped;
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

namespace {

// Scale-aware relative difference (absolute near zero).
double RelDiff(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

// Collects invariant outcomes against one shared report. The context string
// carries the coordinates of the configuration under test so a violation is
// reproducible from its message alone.
class Auditor {
 public:
  Auditor(AuditReport* report, const AuditOptions& options)
      : report_(report), options_(options) {}

  void set_context(std::string context) { context_ = std::move(context); }

  [[nodiscard]] const AuditOptions& options() const { return options_; }

  bool Check(bool condition, const char* invariant, std::string detail) {
    ++report_->checks;
    if (condition) return true;
    if (report_->violations.size() <
        static_cast<std::size_t>(options_.max_violations)) {
      report_->violations.push_back(
          AuditViolation{invariant, context_, std::move(detail)});
    } else {
      ++report_->dropped;
    }
    return false;
  }

  // actual == expected within the relative tolerance.
  bool CheckClose(double actual, double expected, const char* invariant) {
    return Check(RelDiff(actual, expected) <= options_.rel_tol, invariant,
                 StrFormat("got %.17g, expected %.17g", actual, expected));
  }

  // a <= b within the relative tolerance.
  bool CheckLe(double a, double b, const char* invariant) {
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return Check(a - b <= options_.rel_tol * scale, invariant,
                 StrFormat("%.17g > %.17g", a, b));
  }

  // v is a finite non-negative number (every reported time/byte quantity).
  bool CheckFiniteNonNeg(double v, const char* invariant) {
    return Check(std::isfinite(v) && v >= 0.0, invariant,
                 StrFormat("got %.17g", v));
  }

  // Typed forms: both sides must carry the same dimension; the comparison
  // itself happens on the raw values (a report-format boundary).
  template <int B, int S, int F>
  bool CheckClose(Quantity<B, S, F> actual, Quantity<B, S, F> expected,
                  const char* invariant) {
    return CheckClose(actual.raw(), expected.raw(), invariant);
  }
  template <int B, int S, int F>
  bool CheckLe(Quantity<B, S, F> a, Quantity<B, S, F> b,
               const char* invariant) {
    return CheckLe(a.raw(), b.raw(), invariant);
  }

 private:
  AuditReport* report_;
  const AuditOptions& options_;
  std::string context_;
};

std::string ExecContext(const Application& app, const std::string& sys_label,
                        const Execution& e) {
  return StrFormat(
      "%s/%s n=%lld t=%lld p=%lld d=%lld mb=%lld batch=%lld rc=%s%s%s%s",
      app.name.c_str(), sys_label.c_str(),
      static_cast<long long>(e.num_procs),
      static_cast<long long>(e.tensor_par),
      static_cast<long long>(e.pipeline_par),
      static_cast<long long>(e.data_par),
      static_cast<long long>(e.microbatch),
      static_cast<long long>(e.batch_size), ToString(e.recompute),
      e.tp_rs_ag ? " opt" : "", e.any_offload() ? " offload" : "",
      e.training ? "" : " inference");
}

// Evaluates one configuration, bumping the evaluation counters and checking
// the infeasibility-reporting contract (a rejection always says why). With a
// RunContext, exceptions and model-bug Results are isolated into
// FailureRecords: an injected fault only degrades the run, while a genuine
// throw out of the model additionally counts as a violation.
[[nodiscard]] Result<Stats> Evaluate(const Application& app,
                                     const System& sys,
                                     const std::string& sys_label,
                                     const Execution& exec,
                                     AuditReport* report, Auditor* audit) {
  const AuditOptions& options = audit->options();
  const std::uint64_t key = options.fault_key_base + report->evaluations;
  ++report->evaluations;
  auto& faults = testing::FaultInjector::Global();
  Result<Stats> res = [&]() -> Result<Stats> {
    try {
      if (faults.enabled() && faults.MaybeInject(key)) {
        return {Infeasible::kBadConfig, "injected fault"};
      }
      return CalculatePerformance(app, exec, sys);
    } catch (const testing::InjectedFault& ex) {
      return {Infeasible::kBadConfig, ex.what()};
    } catch (const std::exception& ex) {
      audit->set_context(ExecContext(app, sys_label, exec));
      audit->Check(false, "evaluation-throws", ex.what());
      return {Infeasible::kBadConfig, ex.what()};
    }
  }();
  if (res.ok()) {
    ++report->feasible;
  } else {
    if (options.ctx != nullptr && res.reason() == Infeasible::kBadConfig) {
      options.ctx->RecordFailure(key, ExecContext(app, sys_label, exec),
                                 res.detail(), ThreadPool::CurrentWorkerId());
    }
    audit->set_context(ExecContext(app, sys_label, exec));
    audit->Check(res.reason() != Infeasible::kNone && !res.detail().empty(),
                 "infeasible-has-reason", res.detail());
  }
  return res;
}

// Invariants of a single feasible result, cross-checked against an
// independent recomputation from the block model.
void CheckStats(const Application& app, const System& sys,
                const std::string& sys_label, const Execution& exec,
                const Stats& stats, Auditor& audit) {
  const Processor& proc = sys.proc();
  const TimeBreakdown& t = stats.time;
  audit.set_context(ExecContext(app, sys_label, exec));

  // --- Every reported quantity is a finite non-negative number ---
  const struct {
    const char* name;
    double value;
  } fields[] = {
      {"time.fw_pass", t.fw_pass.raw()},
      {"time.bw_pass", t.bw_pass.raw()},
      {"time.fw_recompute", t.fw_recompute.raw()},
      {"time.optim_step", t.optim_step.raw()},
      {"time.pp_bubble", t.pp_bubble.raw()},
      {"time.tp_comm", t.tp_comm.raw()},
      {"time.pp_comm", t.pp_comm.raw()},
      {"time.dp_comm", t.dp_comm.raw()},
      {"time.offload", t.offload.raw()},
      {"tier1.weights", stats.tier1.weights.raw()},
      {"tier1.activations", stats.tier1.activations.raw()},
      {"tier1.weight_grads", stats.tier1.weight_grads.raw()},
      {"tier1.act_grads", stats.tier1.act_grads.raw()},
      {"tier1.optimizer", stats.tier1.optimizer.raw()},
      {"tier2.total", stats.tier2.Total().raw()},
      {"tp_comm_total", stats.tp_comm_total.raw()},
      {"pp_comm_total", stats.pp_comm_total.raw()},
      {"dp_comm_total", stats.dp_comm_total.raw()},
      {"offload_total", stats.offload_total.raw()},
      {"offload_bw_required", stats.offload_bw_required.raw()},
      {"offload_bytes", stats.offload_bytes.raw()},
  };
  for (const auto& f : fields) {
    audit.Check(std::isfinite(f.value) && f.value >= 0.0, "finite-non-negative",
                StrFormat("%s = %.17g", f.name, f.value));
  }

  // --- The breakdown sums to the reported total ---
  audit.CheckClose(stats.batch_time, t.Total(), "time-breakdown-sum");
  audit.CheckClose(stats.sample_rate * stats.batch_time,
                   static_cast<double>(exec.batch_size),
                   "sample-rate-roundtrip");

  // --- MFU matches its definition and stays physical ---
  const Flops useful = ModelFlopsPerSample(app, exec.training) *
                       static_cast<double>(exec.batch_size);
  audit.CheckClose(stats.mfu,
                   useful / (stats.batch_time *
                             static_cast<double>(sys.num_procs()) *
                             proc.matrix.peak_flops()),
                   "mfu-definition");
  audit.Check(stats.mfu > 0.0 && stats.mfu <= 1.0, "mfu-range",
              StrFormat("mfu = %.17g", stats.mfu));

  // --- Compute times re-derived layer by layer ---
  const BlockModel block = BuildBlock(app, exec);
  Seconds fw_block;
  Seconds bw_block;
  for (const Layer& l : block.layers) {
    fw_block += proc.OpTime(l.kind, l.fw_flops, l.fw_bytes);
    bw_block += proc.OpTime(l.kind, l.bw_flops, l.bw_bytes);
  }
  Seconds recompute_block;
  if (exec.recompute == Recompute::kFull) {
    recompute_block = fw_block;
  } else if (exec.recompute == Recompute::kAttnOnly) {
    for (std::size_t idx : block.attn_recompute_layers) {
      const Layer& l = block.layers[idx];
      recompute_block += proc.OpTime(l.kind, l.fw_flops, l.fw_bytes);
    }
  }
  const std::int64_t bpp = CeilDiv(app.num_blocks, exec.pipeline_par);
  const double nb = static_cast<double>(bpp);
  const double nm = static_cast<double>(exec.MicrobatchesPerPipeline());
  if (app.vocab_size == 0) {
    audit.CheckClose(t.fw_pass, nm * nb * fw_block, "fw-layer-sum");
    audit.CheckClose(t.bw_pass, nm * nb * bw_block, "bw-layer-sum");
    audit.CheckClose(t.fw_recompute, nm * nb * recompute_block,
                     "recompute-layer-sum");
  } else {
    // Vocabulary work on the edge stages only adds time.
    audit.CheckLe(nm * nb * fw_block, t.fw_pass, "fw-layer-lower-bound");
    audit.CheckLe(nm * nb * bw_block, t.bw_pass, "bw-layer-lower-bound");
  }

  // --- Disabled parallelism modes report no time ---
  if (exec.tensor_par == 1) {
    audit.CheckClose(t.tp_comm + stats.tp_comm_total, Seconds(0.0),
                     "tp-comm-zero-without-tp");
  }
  if (exec.pipeline_par == 1) {
    audit.CheckClose(t.pp_comm + t.pp_bubble + stats.pp_comm_total,
                     Seconds(0.0), "pp-zero-without-pp");
  }
  if (exec.data_par == 1 || !exec.training) {
    audit.CheckClose(t.dp_comm + stats.dp_comm_total, Seconds(0.0),
                     "dp-comm-zero-without-dp");
  }
  if (!exec.training) {
    audit.CheckClose(t.fw_recompute + t.optim_step, Seconds(0.0),
                     "inference-skips-training-phases");
    if (app.vocab_size == 0) {
      audit.CheckClose(t.bw_pass, Seconds(0.0), "inference-has-no-backward");
    }
  }

  // --- Exposed communication never exceeds busy communication ---
  audit.CheckLe(t.tp_comm, stats.tp_comm_total, "tp-exposed-le-total");
  audit.CheckLe(t.pp_comm, stats.pp_comm_total, "pp-exposed-le-total");
  audit.CheckLe(t.dp_comm, stats.dp_comm_total, "dp-exposed-le-total");

  // --- Memory tiers: within capacity; tier-2 used only when offloading ---
  audit.CheckLe(stats.tier1.Total(), proc.mem1.capacity(), "tier1-capacity");
  if (proc.mem2.present()) {
    audit.CheckLe(stats.tier2.Total(), proc.mem2.capacity(),
                  "tier2-capacity");
  }
  if (!exec.any_offload()) {
    // Mixed-dimension sum on purpose: each term must individually be zero,
    // so the check collapses them through raw().
    audit.CheckClose(stats.tier2.Total().raw() + t.offload.raw() +
                         stats.offload_total.raw() +
                         stats.offload_bytes.raw() +
                         stats.offload_bw_required.raw(),
                     0.0, "offload-zero-when-disabled");
  }

  // --- Tier-1 breakdown re-derived from the block model ---
  if (!exec.any_offload() && app.vocab_size == 0) {
    const double shard =
        exec.optimizer_sharding ? static_cast<double>(exec.data_par) : 1.0;
    const PipelineShape shape{exec.pipeline_par, exec.pp_interleaving,
                              exec.MicrobatchesPerPipeline(), exec.pp_1f1b};
    const double in_flight =
        exec.training ? InFlightMicrobatches(shape) : 1.0;
    const Bytes wgrad = block.WeightGradBytes();
    audit.CheckClose(stats.tier1.weights, block.WeightBytes() * nb,
                     "mem-weights-rederived");
    audit.CheckClose(stats.tier1.weight_grads,
                     wgrad * nb / shard +
                         (exec.training ? wgrad : Bytes(0.0)),
                     "mem-weight-grads-rederived");
    audit.CheckClose(stats.tier1.activations,
                     block.ActStoredBytes(exec.recompute) * nb * in_flight +
                         block.ActStoredBytes(Recompute::kNone),
                     "mem-activations-rederived");
    audit.CheckClose(stats.tier1.act_grads, block.act_grad_working_bytes,
                     "mem-act-grads-rederived");
    audit.CheckClose(stats.tier1.optimizer,
                     block.OptimizerBytes() * nb / shard,
                     "mem-optimizer-rederived");
  }
}

// Cross-result invariants between two recompute modes of the same
// configuration: the baseline passes are untouched and the model FLOPs are
// conserved (recomputation only adds work, it never changes what a batch
// computes).
void CheckRecomputePair(const Application& app, const std::string& sys_label,
                        const Execution& exec_hi, const Stats& base,
                        const Stats& more, Auditor& audit) {
  audit.set_context(ExecContext(app, sys_label, exec_hi));
  audit.CheckClose(more.time.fw_pass, base.time.fw_pass,
                   "recompute-preserves-fw");
  audit.CheckClose(more.time.bw_pass, base.time.bw_pass,
                   "recompute-preserves-bw");
  audit.CheckLe(base.time.fw_recompute, more.time.fw_recompute,
                "recompute-monotone");
  // mfu * batch_time == model_flops * batch / (procs * peak): constant
  // across recompute modes — FLOP conservation.
  audit.CheckClose(more.mfu * more.batch_time, base.mfu * base.batch_time,
                   "flop-conservation-across-recompute");
  if (!exec_hi.any_offload()) {
    audit.CheckLe(more.tier1.activations, base.tier1.activations,
                  "recompute-shrinks-activations");
  }
}

void AuditBundle(const Application& app, const System& sys,
                 const std::string& sys_label, const Execution& base,
                 AuditReport* report, Auditor& audit) {
  // Recompute-mode trio on the same coordinates.
  const Recompute modes[] = {Recompute::kNone, Recompute::kAttnOnly,
                             Recompute::kFull};
  std::optional<Stats> by_mode[3];
  Execution exec_of[3];
  // The outer sweep polls RunContext between bundles; this trio is bounded.
  for (int i = 0; i < 3; ++i) {  // lint-ok(cancellation-poll): bounded trio
    Execution e = base;
    e.recompute = modes[i];
    exec_of[i] = e;
    Result<Stats> res = Evaluate(app, sys, sys_label, e, report, &audit);
    if (res.ok()) {
      by_mode[i] = std::move(res).value();
      CheckStats(app, sys, sys_label, e, *by_mode[i], audit);
    }
  }
  if (by_mode[0]) {
    audit.set_context(ExecContext(app, sys_label, exec_of[0]));
    audit.CheckClose(by_mode[0]->time.fw_recompute, Seconds(0.0),
                     "no-recompute-means-no-recompute-time");
  }
  for (int i = 1; i < 3; ++i) {
    if (by_mode[0] && by_mode[i]) {
      CheckRecomputePair(app, sys_label, exec_of[i], *by_mode[0],
                         *by_mode[i], audit);
    }
  }
  if (by_mode[0] && by_mode[2] && app.vocab_size == 0) {
    // Full recomputation repeats the whole forward pass.
    audit.set_context(ExecContext(app, sys_label, exec_of[2]));
    audit.CheckClose(by_mode[2]->time.fw_recompute, by_mode[0]->time.fw_pass,
                     "full-recompute-equals-fw-pass");
  }

  // Offload twin: every tensor family offloaded. Offloading is a memory
  // play — it can only add exposed transfer time, never speed up a batch.
  if (sys.proc().mem2.present() && base.training) {
    Execution off = base;
    off.weight_offload = true;
    off.activation_offload = true;
    off.optimizer_offload = true;
    Result<Stats> res = Evaluate(app, sys, sys_label, off, report, &audit);
    if (res.ok()) {
      const Stats& o = res.value();
      CheckStats(app, sys, sys_label, off, o, audit);
      if (by_mode[0]) {
        const Stats& b = *by_mode[0];
        audit.set_context(ExecContext(app, sys_label, off));
        audit.CheckLe(b.batch_time, o.batch_time,
                      "offload-never-beats-no-offload");
        audit.CheckClose(o.batch_time, b.batch_time + o.time.offload,
                         "offload-only-adds-exposed-transfer");
        audit.CheckClose(o.time.fw_pass, b.time.fw_pass,
                         "offload-preserves-fw");
        audit.CheckClose(o.time.bw_pass, b.time.bw_pass,
                         "offload-preserves-bw");
        audit.CheckClose(o.time.dp_comm, b.time.dp_comm,
                         "offload-preserves-dp-comm");
        audit.CheckLe(o.tier1.Total(), b.tier1.Total(),
                      "offload-frees-tier1");
      }
    }
  }
}

void AuditSplit(const Application& app, const System& sys,
                const std::string& sys_label, const Triple& s,
                std::int64_t mb, AuditReport* report, Auditor& audit) {
  Execution base;
  base.num_procs = sys.num_procs();
  base.tensor_par = s.t;
  base.pipeline_par = s.p;
  base.data_par = s.d;
  base.microbatch = mb;
  const std::int64_t nm = std::max<std::int64_t>(s.p, 2);
  base.batch_size = s.d * mb * nm;

  // Plain Megatron-style mapping with every optimization off.
  AuditBundle(app, sys, sys_label, base, report, audit);

  // The same split with the optimization families that apply switched on
  // (the full-bundle regime of Section 5.4).
  Execution opt = base;
  opt.fused_activation = true;
  if (s.t > 1) {
    opt.tp_rs_ag = true;
    opt.tp_overlap = TpOverlap::kRing;
    if (app.seq_size % s.t == 0) {
      opt.seq_par = true;
      opt.seq_par_ag_redo = true;
    }
  }
  if (s.d > 1) {
    opt.dp_overlap = true;
    opt.optimizer_sharding = true;
  }
  if (s.p > 1) {
    const std::int64_t bpp = CeilDiv(app.num_blocks, s.p);
    opt.pp_interleaving = std::min<std::int64_t>(2, bpp);
    if (s.t > 1) opt.pp_rs_ag = true;
  }
  AuditBundle(app, sys, sys_label, opt, report, audit);

  // Forward-only serving on the plain mapping.
  Execution inf = base;
  inf.training = false;
  inf.batch_size = s.d * mb;
  Result<Stats> res = Evaluate(app, sys, sys_label, inf, report, &audit);
  if (res.ok()) CheckStats(app, sys, sys_label, inf, res.value(), audit);
}

}  // namespace

AuditReport AuditMath() {
  AuditReport report;
  AuditOptions options;
  Auditor audit(&report, options);
  audit.set_context("math helpers");

  std::vector<std::int64_t> ns;
  for (std::int64_t n = 1; n <= 64; ++n) ns.push_back(n);
  for (std::int64_t n : {96, 100, 105, 128, 240, 360, 512, 1024, 3072, 4096,
                         12288}) {
    ns.push_back(n);
  }

  for (std::int64_t n : ns) {
    const std::vector<std::int64_t> divs = Divisors(n);
    audit.Check(!divs.empty() && divs.front() == 1 && divs.back() == n,
                "divisors-bracket",
                StrFormat("n=%lld", static_cast<long long>(n)));
    const std::set<std::int64_t> dset(divs.begin(), divs.end());
    audit.Check(dset.size() == divs.size(), "divisors-unique",
                StrFormat("n=%lld", static_cast<long long>(n)));
    bool sorted = true;
    bool divide = true;
    bool closed = true;  // d | n implies (n/d) | n — divisor set round-trip
    for (std::size_t i = 0; i < divs.size(); ++i) {
      if (i > 0 && divs[i - 1] >= divs[i]) sorted = false;
      if (n % divs[i] != 0) divide = false;
      if (dset.count(n / divs[i]) == 0) closed = false;
    }
    audit.Check(sorted, "divisors-ascending",
                StrFormat("n=%lld", static_cast<long long>(n)));
    audit.Check(divide, "divisors-divide",
                StrFormat("n=%lld", static_cast<long long>(n)));
    audit.Check(closed, "divisors-complement-closed",
                StrFormat("n=%lld", static_cast<long long>(n)));

    // NextDivisor returns the minimal divisor >= lo.
    for (std::int64_t lo = 1; lo <= std::min<std::int64_t>(n + 1, 70);
         ++lo) {
      const std::int64_t nd = NextDivisor(n, lo);
      bool minimal = n % nd == 0;
      if (lo <= n) {
        if (nd < lo) minimal = false;
        for (std::int64_t d : divs) {
          if (d >= lo && d < nd) minimal = false;
        }
      } else if (nd != n) {
        minimal = false;
      }
      audit.Check(minimal, "next-divisor-minimal",
                  StrFormat("n=%lld lo=%lld got %lld",
                            static_cast<long long>(n),
                            static_cast<long long>(lo),
                            static_cast<long long>(nd)));
    }

    // FactorTriples: every triple multiplies back to n; the enumeration is
    // duplicate-free and complete (sum over t of |Divisors(n/t)|).
    const std::vector<Triple> triples = FactorTriples(n);
    std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> tset;
    bool products = true;
    for (const Triple& tr : triples) {
      if (tr.t * tr.p * tr.d != n) products = false;
      tset.insert({tr.t, tr.p, tr.d});
    }
    audit.Check(products, "factor-triples-product",
                StrFormat("n=%lld", static_cast<long long>(n)));
    audit.Check(tset.size() == triples.size(), "factor-triples-unique",
                StrFormat("n=%lld", static_cast<long long>(n)));
    std::size_t expected = 0;
    for (std::int64_t t : divs) expected += Divisors(n / t).size();
    audit.Check(triples.size() == expected, "factor-triples-complete",
                StrFormat("n=%lld got %zu want %zu",
                          static_cast<long long>(n), triples.size(),
                          expected));
  }

  // CeilDiv round-trip: q is the least integer with q*b >= a.
  for (std::int64_t a : {0, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1000, 12288}) {
    for (std::int64_t b : {1, 2, 3, 7, 8, 16, 64, 4096}) {
      const std::int64_t q = CeilDiv(a, b);
      audit.Check(q * b >= a && (a == 0 ? q == 0 : (q - 1) * b < a),
                  "ceil-div-roundtrip",
                  StrFormat("a=%lld b=%lld q=%lld",
                            static_cast<long long>(a),
                            static_cast<long long>(b),
                            static_cast<long long>(q)));
    }
  }

  // CheckedMul flags exactly the products that do not fit.
  std::int64_t out = 0;
  audit.Check(CheckedMul(1 << 20, 1 << 20, &out) && out == (1LL << 40),
              "checked-mul-fits", "2^20 * 2^20");
  audit.Check(CheckedMul(-4, 6, &out) && out == -24, "checked-mul-fits",
              "-4 * 6");
  audit.Check(!CheckedMul(1LL << 32, 1LL << 32, &out), "checked-mul-flags",
              "2^32 * 2^32");
  audit.Check(!CheckedMul(std::numeric_limits<std::int64_t>::min(), -1, &out),
              "checked-mul-flags", "INT64_MIN * -1");
  return report;
}

AuditReport AuditPair(const Application& app, const System& base_sys,
                      const AuditOptions& options) {
  AuditReport report;
  Auditor audit(&report, options);
  const std::string sys_label = options.context_label.empty()
                                    ? base_sys.name()
                                    : options.context_label;

  std::vector<std::int64_t> counts = options.proc_counts;
  if (counts.empty()) {
    for (std::int64_t n :
         {std::int64_t{8}, std::int64_t{64}, std::int64_t{512},
          base_sys.num_procs()}) {
      if (n <= base_sys.num_procs()) counts.push_back(n);
    }
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  for (std::int64_t n : counts) {
    if (options.ctx != nullptr && options.ctx->ShouldStop()) break;
    const System sys = base_sys.WithNumProcs(n);
    std::vector<Triple> splits = FactorTriples(n);
    const std::size_t cap = static_cast<std::size_t>(
        std::max(options.max_splits, 1));
    if (splits.size() > cap) {
      // Even stride through the ordered enumeration keeps TP-heavy,
      // PP-heavy, DP-heavy, and mixed splits all represented.
      std::vector<Triple> sampled;
      sampled.reserve(cap);
      for (std::size_t k = 0; k < cap; ++k) {
        sampled.push_back(splits[k * splits.size() / cap]);
      }
      splits = std::move(sampled);
    }
    for (const Triple& split : splits) {
      if (options.ctx != nullptr && options.ctx->ShouldStop()) break;
      for (std::int64_t mb : {std::int64_t{1}, std::int64_t{2}}) {
        AuditSplit(app, sys, sys_label, split, mb, &report, audit);
      }
    }
  }
  return report;
}

json::Value ReportToJson(const AuditReport& report) {
  json::Value v;
  v["evaluations"] = static_cast<std::int64_t>(report.evaluations);
  v["feasible"] = static_cast<std::int64_t>(report.feasible);
  v["checks"] = static_cast<std::int64_t>(report.checks);
  v["dropped"] = static_cast<std::int64_t>(report.dropped);
  json::Array violations;
  for (const AuditViolation& violation : report.violations) {
    json::Value vj;
    vj["invariant"] = violation.invariant;
    vj["context"] = violation.context;
    vj["detail"] = violation.detail;
    violations.push_back(std::move(vj));
  }
  v["violations"] = json::Value(std::move(violations));
  return v;
}

AuditReport ReportFromJson(const json::Value& v) {
  AuditReport report;
  report.evaluations = static_cast<std::uint64_t>(v.at("evaluations").AsInt());
  report.feasible = static_cast<std::uint64_t>(v.at("feasible").AsInt());
  report.checks = static_cast<std::uint64_t>(v.at("checks").AsInt());
  report.dropped = static_cast<std::uint64_t>(v.at("dropped").AsInt());
  for (const json::Value& vj : v.at("violations").AsArray()) {
    report.violations.push_back(AuditViolation{vj.at("invariant").AsString(),
                                               vj.at("context").AsString(),
                                               vj.at("detail").AsString()});
  }
  return report;
}

}  // namespace calculon::analysis
