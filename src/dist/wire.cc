#include "dist/wire.h"

#include <unistd.h>

#include <cerrno>

namespace calculon::dist {

bool FrameWriter::WriteFrame(const json::Value& value) {
  std::string line = value.Dump(0);
  line.push_back('\n');
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al.: the peer is gone
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

FrameReader::FillStatus FrameReader::Fill() {
  char chunk[4096];
  const ssize_t n = ::read(fd_, chunk, sizeof chunk);
  if (n > 0) {
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return FillStatus::kData;
  }
  if (n == 0) {
    eof_ = true;
    return FillStatus::kEof;
  }
  if (errno == EINTR) return FillStatus::kWouldBlock;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return FillStatus::kWouldBlock;
  eof_ = true;  // a hard read error ends the stream like an EOF
  return FillStatus::kError;
}

bool FrameReader::NextFrame(json::Value* out) {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) return false;
  const std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  *out = json::Parse(line);
  return true;
}

bool FrameReader::ReadFrameBlocking(json::Value* out) {
  while (true) {
    if (NextFrame(out)) return true;
    if (eof_) return false;
    const FillStatus status = Fill();
    if (status == FillStatus::kEof || status == FillStatus::kError) {
      // Drain any final complete frame that arrived with the close.
      return NextFrame(out);
    }
  }
}

}  // namespace calculon::dist
