#include "dist/drivers.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/perf_model.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/mathutil.h"
#include "util/strings.h"
#include "util/threadpool.h"

namespace calculon::dist {

namespace {

SupervisorOptions ToSupervisorOptions(const DistOptions& dist,
                                      RunContext* ctx,
                                      std::uint64_t first_item) {
  SupervisorOptions options;
  options.workers = dist.workers;
  options.shard_size = dist.shard_size;
  options.first_item = first_item;
  options.max_attempts = dist.max_attempts;
  options.backoff_base_ms = dist.backoff_base_ms;
  options.backoff_max_ms = dist.backoff_max_ms;
  options.hang_timeout_s = dist.hang_timeout_s;
  options.ctx = ctx;
  options.worker_log_dir = dist.worker_log_dir;
  options.flight_capacity = dist.flight_capacity;
  options.faults_spec = dist.faults_spec;
  return options;
}

FailureRecord FailureFromJson(const json::Value& v) {
  FailureRecord record;
  record.item = static_cast<std::uint64_t>(v.GetInt("item", 0));
  record.fingerprint = v.GetString("fingerprint", "");
  record.reason = v.GetString("reason", "");
  record.worker = static_cast<unsigned>(v.GetInt("worker", 0));
  return record;
}

// Worker-side hard failures replay onto the parent's context so
// failure-budget and failure-sample accounting match the in-process run.
void ReplayFailures(RunContext* ctx, const json::Value& failures) {
  if (ctx == nullptr) return;
  for (const json::Value& f : failures.AsArray()) {
    const FailureRecord record = FailureFromJson(f);
    ctx->RecordFailure(record.item, record.fingerprint, record.reason,
                       record.worker);
  }
}

}  // namespace

StudyRun RunStudySupervised(const Study& study, const StudyRunOptions& options,
                            const DistOptions& dist) {
  if (!dist.active()) return study.RunResilient(options);
  CALC_TRACE_SPAN("dist", "study");

  const std::vector<Execution> execs = study.Enumerate();
  StudyRun run;
  run.total_rows = execs.size();
  const std::string fingerprint = study.Fingerprint();

  if (options.resume) {
    if (options.checkpoint_path.empty()) {
      throw ConfigError("study: resume requires a checkpoint path");
    }
    if (std::filesystem::exists(options.checkpoint_path)) {
      LoadStudyCheckpoint(options.checkpoint_path, fingerprint, &run);
      if (run.csv_rows.size() > execs.size()) {
        throw ConfigError("study: checkpoint has more rows than the sweep");
      }
    }
  }
  run.resumed_rows = run.csv_rows.size();

  RunContext* const ctx = options.ctx;
  const std::uint64_t every =
      std::max<std::uint64_t>(1, options.checkpoint_every);
  std::uint64_t since_checkpoint = 0;

  json::Value spec;
  spec["job"] = "study";
  spec["spec"] = study.ToJson();
  spec["fault_key_base"] = static_cast<std::int64_t>(options.fault_key_base);

  // Results arrive in completion order; commit them in row order so the
  // checkpoint prefix, the CSV, and the best-row decision sequence are
  // the ones the sequential loop would have produced.
  std::map<std::uint64_t, json::Value> arrived;
  std::map<std::uint64_t, FailureRecord> quarantined;
  std::uint64_t committed = run.resumed_rows;

  auto commit_ready = [&] {
    for (;;) {
      if (const auto it = arrived.find(committed); it != arrived.end()) {
        const json::Value& r = it->second;
        const Execution& e = execs[committed];
        const bool ok = r.GetBool("ok", false);
        // Mirrors RunResilient: kBadConfig out of a well-formed row is a
        // model bug or injected fault, charged to the failure budget.
        if (ctx != nullptr && !ok && r.GetBool("bad_config", false)) {
          ctx->RecordFailure(committed, StudyRowFingerprint(e),
                             r.GetString("detail", ""));
        }
        if (ok) {
          // The raw double traveled as %.17g: this comparison sees the
          // exact value the in-process loop computed.
          const PerSecond rate(r.at("sample_rate").AsDouble());
          if (rate > run.best.sample_rate) {
            run.best.found = true;
            run.best.row = committed;
            run.best.exec = e;
            run.best.sample_rate = rate;
          }
        }
        run.csv_rows.push_back(r.at("csv").AsString());
        arrived.erase(it);
      } else if (const auto qt = quarantined.find(committed);
                 qt != quarantined.end()) {
        const Execution& e = execs[committed];
        run.csv_rows.push_back(StudyCsvRow(
            e, Result<Stats>(Infeasible::kBadConfig, qt->second.reason)));
        if (ctx != nullptr) {
          // Keep the supervisor's evidence (worker, flight post-mortem),
          // scoped with this row's coordinates.
          FailureRecord record = std::move(qt->second);
          record.item = committed;
          record.fingerprint = StudyRowFingerprint(e);
          ctx->RecordFailure(std::move(record));
        }
        quarantined.erase(qt);
      } else {
        break;
      }
      if (ctx != nullptr) ctx->RecordCompleted();
      ++committed;
      if (!options.checkpoint_path.empty() && ++since_checkpoint >= every) {
        since_checkpoint = 0;
        WriteStudyCheckpoint(options.checkpoint_path,
                             StudyCheckpointToJson(fingerprint, run));
      }
    }
  };

  SupervisorCallbacks callbacks;
  callbacks.on_item = [&](std::uint64_t item, const json::Value& result) {
    arrived[item] = result;
    commit_ready();
  };
  callbacks.on_quarantine = [&](const FailureRecord& record) {
    quarantined[record.item] = record;
    commit_ready();
  };

  (void)RunSupervised(spec, execs.size(),
                      ToSupervisorOptions(dist, ctx, run.resumed_rows),
                      callbacks);
  commit_ready();

  if (ctx != nullptr) run.status = ctx->Snapshot();
  run.status.complete = run.csv_rows.size() == execs.size();
  if (!options.checkpoint_path.empty()) {
    WriteStudyCheckpoint(options.checkpoint_path,
                         StudyCheckpointToJson(fingerprint, run));
  }
  return run;
}

SearchResult FindOptimalExecutionSupervised(const Application& app,
                                            const System& sys,
                                            const SearchSpace& space,
                                            const SearchConfig& config,
                                            const DistOptions& dist) {
  // The wire format ships tallies and top-k candidates, not the full-rate
  // and Pareto collections — those collectors stay in-process.
  if (!dist.active() || config.keep_all_rates || config.keep_pareto) {
    ThreadPool pool(dist.fallback_threads);
    return FindOptimalExecution(app, sys, space, config, pool);
  }
  CALC_TRACE_SPAN("dist", "exec_search");

  const std::vector<Triple> triples = SearchTriples(app, sys, space, config);
  RunContext* const ctx = config.ctx;

  json::Value spec;
  spec["job"] = "exec_search";
  spec["application"] = app.ToJson();
  spec["system"] = sys.ToJson();
  spec["space"] = space.ToJson();
  json::Value cfg;
  cfg["batch_size"] = static_cast<std::int64_t>(config.batch_size);
  cfg["top_k"] = static_cast<std::int64_t>(config.top_k);
  spec["config"] = cfg;

  std::map<std::uint64_t, json::Value> arrived;
  SupervisorCallbacks callbacks;
  callbacks.on_item = [&](std::uint64_t item, const json::Value& result) {
    arrived[item] = result;
  };
  callbacks.on_quarantine = [&](const FailureRecord& record) {
    if (ctx != nullptr) {
      const Triple& tr = triples[record.item];
      FailureRecord scoped = record;
      scoped.item = record.item << 32;
      scoped.fingerprint =
          StrFormat("t=%lld p=%lld d=%lld", static_cast<long long>(tr.t),
                    static_cast<long long>(tr.p),
                    static_cast<long long>(tr.d));
      ctx->RecordFailure(std::move(scoped));
    }
  };

  (void)RunSupervised(spec, triples.size(),
                      ToSupervisorOptions(dist, ctx, 0), callbacks);

  // Merge in triple order (the map iterates sorted), so tie-breaking in
  // InsertTopK is deterministic — stronger than the in-process parallel
  // merge, which is completion-ordered.
  SearchResult result;
  std::vector<std::uint64_t> rejected;
  for (const auto& [item, r] : arrived) {
    result.evaluated += static_cast<std::uint64_t>(r.GetInt("evaluated", 0));
    result.feasible += static_cast<std::uint64_t>(r.GetInt("feasible", 0));
    const json::Array& rej = r.at("rejected").AsArray();
    if (rejected.size() < rej.size()) rejected.resize(rej.size(), 0);
    for (std::size_t i = 0; i < rej.size(); ++i) {
      rejected[i] += static_cast<std::uint64_t>(rej[i].AsInt());
    }
    ReplayFailures(ctx, r.at("failures"));
    for (const json::Value& exec_json : r.at("best").AsArray()) {
      Execution exec = Execution::FromJson(exec_json);
      // Deterministic re-evaluation recovers the full Stats the worker
      // saw; shipping only the Execution keeps the wire format small.
      Result<Stats> stats = CalculatePerformance(app, exec, sys);
      if (!stats.ok()) continue;  // cannot happen for a shipped candidate
      InsertTopK(result.best, config.top_k, std::move(exec),
                 std::move(stats).value());
    }
  }

  // Evaluation metrics (evaluated/feasible/rejections/eval_latency) now
  // come from the workers themselves: each instruments its sweep and the
  // supervisor ingested the merged snapshots above. Only the culling of
  // structurally invalid triples happens parent-side (SearchTriples runs
  // here, never in a worker), so that counter is recorded here to match
  // the in-process run.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.GetCounter("exec_search.culled_triples")
        ->Increment(FactorTriples(sys.num_procs()).size() - triples.size());
  }
  CALC_TRACE_COUNTER("exec_search.evaluated", result.evaluated);

  if (ctx != nullptr) result.status = ctx->Snapshot();
  return result;
}

AuditDistResult RunAuditSupervised(
    const std::vector<AuditPairSpec>& pairs,
    const analysis::AuditOptions& options, const DistOptions& dist,
    RunContext* ctx,
    const std::function<void(std::uint64_t, const analysis::AuditReport&)>&
        on_pair_done) {
  CALC_TRACE_SPAN("dist", "audit");
  AuditDistResult out;
  out.reports.resize(pairs.size());
  out.completed.assign(pairs.size(), 0);

  json::Value spec;
  spec["job"] = "audit";
  json::Value opts;
  json::Array proc_counts;
  proc_counts.reserve(options.proc_counts.size());
  for (std::int64_t n : options.proc_counts) proc_counts.emplace_back(n);
  opts["proc_counts"] = json::Value(std::move(proc_counts));
  opts["max_splits"] = static_cast<std::int64_t>(options.max_splits);
  opts["rel_tol"] = options.rel_tol;
  opts["max_violations"] = static_cast<std::int64_t>(options.max_violations);
  spec["options"] = opts;
  json::Array pair_specs;
  pair_specs.reserve(pairs.size());
  for (const AuditPairSpec& pair : pairs) {
    json::Value p;
    p["application"] = pair.app.ToJson();
    p["system"] = pair.sys.ToJson();
    p["context_label"] = pair.context_label;
    p["fault_key_base"] = static_cast<std::int64_t>(pair.fault_key_base);
    pair_specs.push_back(std::move(p));
  }
  spec["pairs"] = json::Value(std::move(pair_specs));

  SupervisorCallbacks callbacks;
  callbacks.on_item = [&](std::uint64_t item, const json::Value& result) {
    out.reports[item] = analysis::ReportFromJson(result.at("report"));
    out.completed[item] = 1;
    ReplayFailures(ctx, result.at("failures"));
    if (on_pair_done) on_pair_done(item, out.reports[item]);
  };
  callbacks.on_quarantine = [&](const FailureRecord& record) {
    if (ctx != nullptr) {
      FailureRecord scoped = record;
      scoped.fingerprint = pairs[record.item].context_label;
      ctx->RecordFailure(std::move(scoped));
    }
  };

  out.supervisor = RunSupervised(spec, pairs.size(),
                                 ToSupervisorOptions(dist, ctx, 0), callbacks);
  return out;
}

}  // namespace calculon::dist
