// Supervised front ends for the three sweep engines: the parent-side
// drivers that ship a job spec to a worker pool (dist/supervisor.h) and
// merge the streamed results back into the engines' native result types.
//
// Contract: for items untouched by process-level faults, a supervised run
// produces bit-identical output to the in-process engine. The drivers get
// this by (a) evaluating every item with the engine's own single-item
// evaluator inside the worker, (b) shipping doubles as %.17g JSON
// (lossless), and (c) committing results in item order through a reorder
// buffer, so checkpoints, CSV rows, and best-candidate selection replay
// the exact decision sequence of the sequential loop. Quarantined items
// surface as FailureRecords on the caller's RunContext — the run degrades
// (exit code 3 at the CLI) instead of dying.
//
// Every driver falls back to its in-process engine when dist is inactive
// (workers == 0, fork unavailable, or a collector the wire format does not
// carry), so callers always pass through one code path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/audit.h"
#include "dist/supervisor.h"
#include "hw/system.h"
#include "models/application.h"
#include "runner/study.h"
#include "search/exec_search.h"
#include "util/run_context.h"

namespace calculon::dist {

struct DistOptions {
  int workers = 0;  // 0: run in-process
  std::uint64_t shard_size = 16;
  int max_attempts = 3;
  std::int64_t backoff_base_ms = 10;
  std::int64_t backoff_max_ms = 2000;
  double hang_timeout_s = 30.0;
  // ThreadPool size for in-process fallback paths (0: hardware).
  unsigned fallback_threads = 0;
  // Worker stderr capture directory (see SupervisorOptions).
  std::string worker_log_dir;
  // Per-worker crash flight recorder capacity (see SupervisorOptions).
  int flight_capacity = 64;
  // FaultPlan spec forwarded to workers; the supervised engines inject
  // inside the worker, never in the parent.
  std::string faults_spec;

  [[nodiscard]] bool active() const { return workers > 0 && ForkAvailable(); }
};

// Study::RunResilient across a supervised worker pool. Checkpoint/resume
// uses the same file format and fingerprint guard as the in-process
// runner, so a study may be interrupted under one mode and resumed under
// the other. Quarantined rows appear in the CSV as infeasible rows with a
// "quarantined ..." reason and count as failures on options.ctx.
[[nodiscard]] StudyRun RunStudySupervised(const Study& study,
                                          const StudyRunOptions& options,
                                          const DistOptions& dist);

// FindOptimalExecution across a supervised worker pool, one (t, p, d)
// triple per item. Falls back in-process when dist is inactive or the
// config requests collectors the wire format does not carry
// (keep_all_rates, keep_pareto). Worker top-k lists merge in triple order
// with the engine's own InsertTopK, after deterministic parent-side
// re-evaluation of each shipped candidate.
[[nodiscard]] SearchResult FindOptimalExecutionSupervised(
    const Application& app, const System& sys, const SearchSpace& space,
    const SearchConfig& config, const DistOptions& dist);

// One (application, system) audit pair, as the caller labels it.
struct AuditPairSpec {
  Application app;
  System sys;
  std::string context_label;
  std::uint64_t fault_key_base = 0;
};

struct AuditDistResult {
  // reports[i] corresponds to pairs[i]; valid where completed[i] != 0.
  std::vector<analysis::AuditReport> reports;
  std::vector<char> completed;
  SupervisorReport supervisor;
};

// AuditPair for each pair across a supervised worker pool. Worker-side
// failures replay onto `ctx`; a quarantined pair stays incomplete (the
// caller's degraded-exit accounting treats it like a pair a stop
// interrupted). `on_pair_done(i, report)` fires as each pair's report
// commits — the caller's journaling hook, so a killed supervised audit
// resumes with per-pair granularity. The caller handles the in-process
// path itself (it owns the ThreadPool and checkpoint logic); call this
// only when dist.active().
[[nodiscard]] AuditDistResult RunAuditSupervised(
    const std::vector<AuditPairSpec>& pairs,
    const analysis::AuditOptions& options, const DistOptions& dist,
    RunContext* ctx,
    const std::function<void(std::uint64_t, const analysis::AuditReport&)>&
        on_pair_done = nullptr);

}  // namespace calculon::dist
