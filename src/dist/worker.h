// The child-process side of the supervised worker pool.
//
// A worker is the same binary as the supervisor — fork() without exec():
// the child calls WorkerMain on its two pipe ends and never returns to
// the caller's code. The protocol (NDJSON frames, see dist/wire.h):
//
//   parent -> worker   {"type":"init", "job":{...}, "faults":"seed=...",
//                       "telemetry":{...}}
//   worker -> parent   {"type":"ready"}
//   parent -> worker   {"type":"shard", "begin":B, "end":E}
//   worker -> parent   {"type":"item", "index":I, "result":{...}}   (per item)
//   worker -> parent   {"type":"shard_done", "begin":B, "end":E}
//   parent -> worker   {"type":"exit"}
//
// Interleaved with the result stream, a worker may send purely
// observational telemetry frames (enabled via the init frame's
// "telemetry" object, see docs/observability.md):
//
//   {"type":"metrics_snapshot", "metrics":{...}}   cumulative registry
//   {"type":"trace_chunk", "events":[...], "dropped":D}
//   {"type":"flight", "events":[...], "dropped":D}  crash flight recorder
//
// The supervisor never feeds these into its reorder buffers, so outputs
// stay bit-identical with telemetry on.
//
// Items are evaluated and acked strictly in order within a shard, which
// is what lets the supervisor identify the *suspect* (first un-acked
// item) when the worker dies. Process-level fault injection happens here:
// MaybeInjectProcess runs before each item, so a seeded abort/segv/hang
// deterministically takes this process down at the same item every time.
#pragma once

namespace calculon::dist {

// Runs the worker protocol loop on the given pipe fds until an exit frame
// or EOF. Returns the process exit code; the fork site must pass it to
// _exit() without unwinding into the parent's code.
[[nodiscard]] int WorkerMain(int in_fd, int out_fd);

}  // namespace calculon::dist
