#include "dist/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <ctime>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/shard_tracker.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "json/json.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/error.h"
#include "util/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define CALCULON_DIST_HAVE_FORK 1
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace calculon::dist {

#if defined(CALCULON_DIST_HAVE_FORK)

namespace {

[[nodiscard]] std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A shard waiting out its backoff before re-dispatch.
struct PendingRetry {
  ShardRange shard;
  std::int64_t ready_at_ms = 0;
};

// Bound on the supervisor-side flight mirror per worker: the worker's own
// ring already bounds what it ships per flush, this additionally caps the
// accumulated history the supervisor keeps.
constexpr std::size_t kFlightMirrorCap = 256;

struct WorkerSlot {
  pid_t pid = -1;  // -1: no live process in this slot
  int cmd_fd = -1;  // parent -> worker (blocking writes; frames are tiny)
  int res_fd = -1;  // worker -> parent (non-blocking, poll()ed)
  std::unique_ptr<FrameWriter> writer;
  std::unique_ptr<FrameReader> reader;
  bool ready = false;  // worker acked init; shards may be dispatched
  bool busy = false;   // a shard is in flight
  ShardRange shard;    // the in-flight shard (valid while busy)
  std::uint64_t acked = 0;  // next expected item index within the shard
  std::int64_t last_activity_ms = 0;

  // The current incarnation's pid, surviving the reap (ReapWorker resets
  // `pid`); stamps this worker's trace lane and post-mortem files.
  pid_t last_pid = -1;
  // Trace timestamp of the last shard dispatch (supervisor timeline), for
  // the handoff span recorded when shard_done arrives. 0 = not tracing.
  double dispatch_ts_us = 0.0;
  // Flight-recorder mirror: the worker's recent activity markers, shipped
  // ahead of each item evaluation; dumped on quarantine (bounded, oldest
  // evicted first).
  std::deque<json::Value> flight;
  std::uint64_t flight_dropped = 0;
  // Last cumulative metrics snapshot from this incarnation; folded into
  // the per-slot total when the incarnation ends.
  obs::MetricsSnapshot live_metrics;
  bool has_live_metrics = false;

  [[nodiscard]] bool alive() const { return pid != -1; }
};

// Mutable loop state bundled so the helpers below stay free functions.
struct Pool {
  const json::Value* init_frame = nullptr;
  SupervisorOptions options;
  const SupervisorCallbacks* callbacks = nullptr;
  ShardTracker* tracker = nullptr;
  SupervisorReport* report = nullptr;

  std::vector<WorkerSlot> slots;
  std::deque<PendingRetry> pending;
  // Workers that died before acking init, with no ready worker in
  // between: when every fork attempt dies at startup the job spec itself
  // is broken and retrying forever would fork-bomb the host.
  int consecutive_startup_failures = 0;

  obs::Gauge* workers_alive = nullptr;
  obs::Counter* restarts = nullptr;
  obs::Counter* reassigned = nullptr;
  obs::Counter* quarantined = nullptr;

  // Per-slot telemetry folded across worker incarnations; ingested into
  // the global registry (tagged and aggregated) at the end of the run.
  std::vector<obs::MetricsSnapshot> finalized_metrics;
  // Sequence number for post-mortem file names (a run may dump several).
  int flight_dump_seq = 0;
};

[[nodiscard]] int CountAlive(const Pool& pool) {
  int n = 0;
  for (const WorkerSlot& slot : pool.slots) n += slot.alive() ? 1 : 0;
  return n;
}

void PublishAlive(Pool& pool) {
  if (pool.workers_alive != nullptr) {
    pool.workers_alive->Set(static_cast<double>(CountAlive(pool)));
  }
}

void CloseSlotFds(WorkerSlot& slot) {
  slot.writer.reset();
  slot.reader.reset();
  if (slot.cmd_fd != -1) ::close(slot.cmd_fd);
  if (slot.res_fd != -1) ::close(slot.res_fd);
  slot.cmd_fd = -1;
  slot.res_fd = -1;
}

// Human description of a reaped worker for quarantine records and logs.
[[nodiscard]] std::string DescribeExit(int status) {
  if (WIFEXITED(status)) {
    return StrFormat("exited with code %d", WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return StrFormat("killed by signal %d (%s)", sig,
                     name != nullptr ? name : "?");
  }
  return "ended with unknown wait status";
}

[[nodiscard]] std::string ReapWorker(WorkerSlot& slot) {
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(slot.pid, &status, 0);
  } while (reaped == -1 && errno == EINTR);
  slot.pid = -1;
  if (reaped == -1) return "could not be reaped";
  return DescribeExit(status);
}

// Folds the incarnation's last cumulative snapshot into the per-slot
// total. Called when an incarnation ends (death or clean shutdown);
// snapshots are cumulative per incarnation, so only the final one counts.
void FinalizeSlotMetrics(Pool& pool, std::size_t index) {
  WorkerSlot& slot = pool.slots[index];
  if (!slot.has_live_metrics) return;
  pool.finalized_metrics[index].Merge(slot.live_metrics);
  slot.live_metrics = obs::MetricsSnapshot();
  slot.has_live_metrics = false;
}

// Dumps the slot's flight mirror to a post-mortem JSON file (see
// docs/observability.md for the format) in worker_log_dir, or the system
// temp directory when no log dir is configured. Returns the path, or ""
// when there was no evidence or the write failed — post-mortems are
// best-effort; a dump failure must never take down the supervisor.
[[nodiscard]] std::string DumpFlightPostMortem(
    Pool& pool, std::size_t index, const std::string& description) {
  WorkerSlot& slot = pool.slots[index];
  if (slot.flight.empty() && slot.flight_dropped == 0) return "";
  std::string dir = pool.options.worker_log_dir;
  try {
    if (dir.empty()) {
      dir = std::filesystem::temp_directory_path().string();
    } else {
      std::filesystem::create_directories(dir);
    }
    const std::string path =
        StrFormat("%s/flight-%03d-worker%d.json", dir.c_str(),
                  pool.flight_dump_seq++, static_cast<int>(index));
    json::Value doc;
    doc["worker_slot"] = static_cast<std::int64_t>(index);
    doc["pid"] = static_cast<std::int64_t>(slot.last_pid);
    doc["description"] = description;
    if (slot.busy) {
      json::Value shard;
      shard["begin"] = static_cast<std::int64_t>(slot.shard.begin);
      shard["end"] = static_cast<std::int64_t>(slot.shard.end);
      doc["shard"] = shard;
      doc["acked"] = static_cast<std::int64_t>(slot.acked);
    }
    doc["mirror_dropped"] = static_cast<std::int64_t>(slot.flight_dropped);
    json::Array events(slot.flight.begin(), slot.flight.end());
    doc["events"] = json::Value(std::move(events));
    json::WriteFile(path, doc);
    return path;
  } catch (const std::exception&) {
    return "";
  }
}

// Telemetry frames interleaved with the result stream. Purely
// observational: they never touch the shard tracker or the driver
// callbacks, which is what keeps supervised outputs bit-identical with
// telemetry on. Returns false for frame types it does not know.
[[nodiscard]] bool HandleTelemetryFrame(Pool& pool, std::size_t index,
                                        const std::string& type,
                                        const json::Value& frame) {
  WorkerSlot& slot = pool.slots[index];
  if (type == "metrics_snapshot") {
    // Cumulative per incarnation: replace, don't merge.
    slot.live_metrics = obs::MetricsSnapshot::FromJson(frame.at("metrics"));
    slot.has_live_metrics = true;
    return true;
  }
  if (type == "trace_chunk") {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    if (recorder.enabled()) {
      recorder.AddExternalEvents(
          static_cast<int>(slot.last_pid),
          StrFormat("worker-%d", static_cast<int>(slot.last_pid)),
          frame.at("events").AsArray());
      recorder.AddExternalDropped(
          static_cast<std::uint64_t>(frame.GetInt("dropped", 0)));
    }
    return true;
  }
  if (type == "flight") {
    for (const json::Value& event : frame.at("events").AsArray()) {
      if (slot.flight.size() >= kFlightMirrorCap) {
        slot.flight.pop_front();
        ++slot.flight_dropped;
      }
      slot.flight.push_back(event);
    }
    slot.flight_dropped +=
        static_cast<std::uint64_t>(frame.GetInt("dropped", 0));
    return true;
  }
  return false;
}

// Forks a worker into `slot`. Returns false when the OS refuses (pipe/fork
// exhaustion) — the caller decides whether that is fatal.
[[nodiscard]] bool SpawnWorker(Pool& pool, std::size_t index) {
  WorkerSlot& slot = pool.slots[index];
  int cmd[2];  // parent writes commands, worker reads
  int res[2];  // worker writes results, parent reads
  if (::pipe(cmd) == -1) return false;
  if (::pipe(res) == -1) {
    ::close(cmd[0]);
    ::close(cmd[1]);
    return false;
  }
  // Anything that formats or allocates happens before the fork: between
  // fork() and _exit() the child may only use async-signal-safe calls
  // (another of the parent's threads could hold the heap or stdio lock at
  // the instant of the fork, and the child would deadlock on it).
  std::string log_path;
  if (!pool.options.worker_log_dir.empty()) {
    log_path =
        StrFormat("%s/worker-%d.log", pool.options.worker_log_dir.c_str(),
                  static_cast<int>(index));
  }
  const pid_t pid = ::fork();
  if (pid == -1) {
    ::close(cmd[0]);
    ::close(cmd[1]);
    ::close(res[0]);
    ::close(res[1]);
    return false;
  }
  if (pid == 0) {
    // Child. Drop every parent-side fd we inherited: our own parent ends
    // and both ends of every sibling's pipes, so a sibling's EOF is
    // observable the instant that sibling dies.
    ::close(cmd[1]);
    ::close(res[0]);
    for (const WorkerSlot& other : pool.slots) {
      if (other.cmd_fd != -1) ::close(other.cmd_fd);
      if (other.res_fd != -1) ::close(other.res_fd);
    }
    if (!log_path.empty()) {
      const int log_fd =
          ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log_fd != -1) {
        ::dup2(log_fd, 2);
        ::close(log_fd);
      }
    }
    // Workers die by _exit, never by unwinding back into the parent's
    // call stack (destructors of the supervisor's state must not run
    // twice).
    ::_exit(WorkerMain(cmd[0], res[1]));
  }
  // Parent.
  ::close(cmd[0]);
  ::close(res[1]);
  const int flags = ::fcntl(res[0], F_GETFL, 0);
  ::fcntl(res[0], F_SETFL, flags | O_NONBLOCK);
  slot.pid = pid;
  slot.cmd_fd = cmd[1];
  slot.res_fd = res[0];
  slot.writer = std::make_unique<FrameWriter>(slot.cmd_fd);
  slot.reader = std::make_unique<FrameReader>(slot.res_fd);
  slot.ready = false;
  slot.busy = false;
  slot.acked = 0;
  slot.last_activity_ms = NowMs();
  // Fresh incarnation: new trace lane, empty flight mirror (the previous
  // incarnation's evidence was dumped by its death handler).
  slot.last_pid = pid;
  slot.dispatch_ts_us = 0.0;
  slot.flight.clear();
  slot.flight_dropped = 0;
  slot.live_metrics = obs::MetricsSnapshot();
  slot.has_live_metrics = false;
  ++pool.report->forked;
  PublishAlive(pool);
  if (!slot.writer->WriteFrame(*pool.init_frame)) {
    // Died before reading its first frame; the death path below picks the
    // EOF up on the next poll, so nothing more to do here.
    return true;
  }
  return true;
}

// `description` explains how the worker ended ("killed by signal 11
// (Segmentation fault)", "hung ..."), used verbatim in quarantine records.
void HandleWorkerDeath(Pool& pool, std::size_t index,
                       const std::string& description) {
  WorkerSlot& slot = pool.slots[index];
  CALC_TRACE_INSTANT("dist", "worker_death");
  FinalizeSlotMetrics(pool, index);
  if (!slot.ready) {
    ++pool.consecutive_startup_failures;
  }
  if (slot.busy) {
    const std::uint64_t acked_up_to = slot.shard.begin + slot.acked;
    const ShardTracker::FailureOutcome outcome =
        pool.tracker->OnShardFailure(slot.shard, acked_up_to);
    if (outcome.quarantined) {
      FailureRecord record;
      record.item = outcome.suspect;
      record.reason = StrFormat("quarantined after %d attempts; last: %s",
                                outcome.attempt, description.c_str());
      record.worker = static_cast<unsigned>(index);
      // Attach the flight-recorder evidence of what the worker was doing
      // when it died; the ring itself was shipped ahead of each item.
      record.flight_path = DumpFlightPostMortem(pool, index, description);
      pool.report->quarantined.push_back(record);
      if (pool.quarantined != nullptr) pool.quarantined->Increment();
      if (pool.callbacks->on_quarantine) pool.callbacks->on_quarantine(record);
    } else if (!pool.options.worker_log_dir.empty()) {
      // Not (yet) a quarantine, but the operator asked for worker logs:
      // keep a post-mortem for every busy death alongside them.
      (void)DumpFlightPostMortem(pool, index, description);
    }
    if (!outcome.retry.empty()) {
      pool.pending.push_back(
          PendingRetry{outcome.retry, NowMs() + outcome.backoff_ms});
      ++pool.report->reassigned;
      if (pool.reassigned != nullptr) pool.reassigned->Increment();
    }
    slot.busy = false;
  }
  CloseSlotFds(slot);
  PublishAlive(pool);
}

}  // namespace

bool ForkAvailable() { return true; }

SupervisorReport RunSupervised(const json::Value& job_spec,
                               std::uint64_t num_items,
                               const SupervisorOptions& options,
                               const SupervisorCallbacks& callbacks) {
  CALC_CHECK(options.workers >= 1, "need at least one worker");
  SupervisorReport report;
  CALC_TRACE_SPAN("dist", "supervisor");

  ShardTrackerOptions tracker_options;
  tracker_options.num_items = num_items;
  tracker_options.first_item = options.first_item;
  tracker_options.shard_size = options.shard_size;
  tracker_options.max_attempts = options.max_attempts;
  tracker_options.backoff_base_ms = options.backoff_base_ms;
  tracker_options.backoff_max_ms = options.backoff_max_ms;
  ShardTracker tracker(tracker_options);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();

  json::Value init_frame;
  init_frame["type"] = "init";
  init_frame["job"] = job_spec;
  init_frame["faults"] = options.faults_spec;
  // Telemetry the workers should produce, mirroring this process's own
  // obs state. trace_start_ns aligns worker timestamps to the supervisor
  // timeline (the steady clock is shared across fork()).
  json::Value telemetry;
  telemetry["metrics"] = metrics.enabled();
  telemetry["trace"] = recorder.enabled();
  telemetry["trace_start_ns"] = recorder.start_ns();
  telemetry["flight_capacity"] =
      static_cast<std::int64_t>(std::max(options.flight_capacity, 0));
  init_frame["telemetry"] = telemetry;
  Pool pool;
  pool.init_frame = &init_frame;
  pool.options = options;
  pool.callbacks = &callbacks;
  pool.tracker = &tracker;
  pool.report = &report;
  if (metrics.enabled()) {
    pool.workers_alive = metrics.GetGauge("dist.workers_alive");
    pool.restarts = metrics.GetCounter("dist.restarts");
    pool.reassigned = metrics.GetCounter("dist.reassigned");
    pool.quarantined = metrics.GetCounter("dist.quarantined");
  }

  // A dead worker must surface as EPIPE on our next write, not SIGPIPE.
  struct sigaction ignore_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction saved_pipe {};
  ::sigaction(SIGPIPE, &ignore_pipe, &saved_pipe);

  const std::int64_t hang_timeout_ms =
      static_cast<std::int64_t>(options.hang_timeout_s * 1000.0);
  // More workers than shards is waste; never fork what we cannot feed.
  const std::uint64_t span =
      num_items > options.first_item ? num_items - options.first_item : 0;
  const std::uint64_t max_useful =
      (span + options.shard_size - 1) / options.shard_size;
  const int worker_count = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(options.workers),
                              std::max<std::uint64_t>(max_useful, 1)));
  pool.slots.resize(static_cast<std::size_t>(worker_count));
  pool.finalized_metrics.resize(pool.slots.size());

  std::string startup_error;
  bool stopped = false;
  for (std::size_t i = 0; i < pool.slots.size() && !tracker.AllResolved();
       ++i) {
    if (!SpawnWorker(pool, i)) {
      startup_error = StrFormat("could not fork worker %d: %s",
                                static_cast<int>(i), std::strerror(errno));
      break;
    }
  }

  while (startup_error.empty() && !tracker.AllResolved()) {
    if (options.ctx != nullptr && options.ctx->ShouldStop()) {
      stopped = true;
      break;
    }
    if (pool.consecutive_startup_failures > worker_count * 3) {
      startup_error = StrFormat(
          "%d consecutive workers died before becoming ready; "
          "the job itself appears to crash at startup",
          pool.consecutive_startup_failures);
      break;
    }

    const std::int64_t now = NowMs();

    // Dispatch: due retries first (they block completion), then fresh
    // shards, to every ready idle worker.
    for (std::size_t i = 0; i < pool.slots.size(); ++i) {
      WorkerSlot& slot = pool.slots[i];
      if (!slot.alive() || !slot.ready || slot.busy) continue;
      ShardRange shard;
      bool have = false;
      for (auto it = pool.pending.begin(); it != pool.pending.end(); ++it) {
        if (it->ready_at_ms <= now) {
          shard = it->shard;
          pool.pending.erase(it);
          have = true;
          break;
        }
      }
      if (!have) have = tracker.Claim(&shard);
      if (!have) break;
      json::Value frame;
      frame["type"] = "shard";
      frame["begin"] = static_cast<std::int64_t>(shard.begin);
      frame["end"] = static_cast<std::int64_t>(shard.end);
      slot.busy = true;
      slot.shard = shard;
      slot.acked = 0;
      slot.last_activity_ms = now;
      slot.dispatch_ts_us = recorder.enabled() ? recorder.NowMicros() : 0.0;
      if (!slot.writer->WriteFrame(frame)) {
        // Dead before the dispatch reached it; fold into the normal death
        // path so the shard is retried and the slot refilled.
        HandleWorkerDeath(pool, i, ReapWorker(slot));
      }
    }

    // Refill empty slots while there are more dispatchable shards than
    // idle live workers can absorb. If a busy worker dies its shard lands
    // in `pending`, so "no dispatchable work" can only coexist with "no
    // live workers" once everything is resolved.
    {
      const std::uint64_t dispatchable =
          pool.pending.size() +
          (tracker.unclaimed() + options.shard_size - 1) / options.shard_size;
      std::uint64_t idle = 0;
      for (const WorkerSlot& slot : pool.slots) {
        if (slot.alive() && !slot.busy) ++idle;
      }
      for (std::size_t i = 0;
           i < pool.slots.size() && idle < dispatchable; ++i) {
        WorkerSlot& slot = pool.slots[i];
        if (slot.alive()) continue;
        if (!SpawnWorker(pool, i)) {
          if (CountAlive(pool) == 0) {
            startup_error =
                StrFormat("could not fork replacement worker %d: %s",
                          static_cast<int>(i), std::strerror(errno));
          }
          break;
        }
        ++report.restarts;
        if (pool.restarts != nullptr) pool.restarts->Increment();
        ++idle;
      }
      if (!startup_error.empty()) break;
    }

    // Poll timeout: the earliest of (next retry due, next hang deadline),
    // capped so stop-signal polling stays responsive.
    std::int64_t timeout = 100;
    for (const PendingRetry& p : pool.pending) {
      timeout = std::min(timeout, std::max<std::int64_t>(p.ready_at_ms - now,
                                                         0));
    }
    for (const WorkerSlot& slot : pool.slots) {
      if (slot.alive() && slot.busy) {
        const std::int64_t deadline =
            slot.last_activity_ms + hang_timeout_ms;
        timeout = std::min(timeout, std::max<std::int64_t>(deadline - now, 0));
      }
    }

    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t i = 0; i < pool.slots.size(); ++i) {
      if (!pool.slots[i].alive()) continue;
      fds.push_back({pool.slots[i].res_fd, POLLIN, 0});
      fd_slot.push_back(i);
    }
    if (fds.empty() && pool.pending.empty()) {
      // No live workers and no retry to wait out, yet not AllResolved():
      // the dispatch/refill invariant was violated. Fail loudly rather
      // than spin.
      startup_error = "no live workers and no pending work to wait for";
      break;
    }
    const int n_ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(timeout));
    if (n_ready == -1 && errno != EINTR) {
      startup_error = StrFormat("poll failed: %s", std::strerror(errno));
      break;
    }

    // Drain readable workers.
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t i = fd_slot[k];
      WorkerSlot& slot = pool.slots[i];
      if (!slot.alive()) continue;  // died earlier this iteration
      bool dead = false;
      for (;;) {
        const FrameReader::FillStatus status = slot.reader->Fill();
        json::Value frame;
        bool corrupt = false;
        try {
          while (slot.reader->NextFrame(&frame)) {
            const std::string type = frame.GetString("type", "");
            slot.last_activity_ms = NowMs();
            if (type == "ready") {
              slot.ready = true;
              pool.consecutive_startup_failures = 0;
            } else if (type == "item") {
              const auto index =
                  static_cast<std::uint64_t>(frame.at("index").AsInt());
              if (!slot.busy || index != slot.shard.begin + slot.acked) {
                corrupt = true;  // out-of-order ack: protocol violation
                break;
              }
              if (pool.callbacks->on_item) {
                pool.callbacks->on_item(index, frame.at("result"));
              }
              tracker.OnItemDone(index);
              ++slot.acked;
            } else if (type == "shard_done") {
              slot.busy = false;
              // Handoff span on the supervisor timeline: dispatch to
              // completion of this shard, labelled with the worker's lane.
              if (recorder.enabled() && slot.dispatch_ts_us > 0.0) {
                recorder.RecordComplete(
                    "dist",
                    StrFormat("shard [%llu,%llu) -> worker-%d",
                              static_cast<unsigned long long>(slot.shard.begin),
                              static_cast<unsigned long long>(slot.shard.end),
                              static_cast<int>(slot.last_pid)),
                    slot.dispatch_ts_us,
                    recorder.NowMicros() - slot.dispatch_ts_us);
                slot.dispatch_ts_us = 0.0;
              }
            } else if (HandleTelemetryFrame(pool, i, type, frame)) {
              // Observational only; nothing else to do.
            } else {
              corrupt = true;
              break;
            }
          }
        } catch (const ConfigError&) {
          corrupt = true;  // malformed frame
        }
        if (corrupt) {
          ::kill(slot.pid, SIGKILL);
          HandleWorkerDeath(
              pool, i,
              StrFormat("sent a corrupt frame (%s)", ReapWorker(slot).c_str()));
          dead = true;
          break;
        }
        if (status == FrameReader::FillStatus::kWouldBlock) break;
        if (status == FrameReader::FillStatus::kEof ||
            status == FrameReader::FillStatus::kError) {
          const bool truncated = slot.reader->truncated();
          std::string description = ReapWorker(slot);
          if (truncated) description += " mid-message";
          HandleWorkerDeath(pool, i, description);
          dead = true;
          break;
        }
      }
      if (dead) continue;
      // A worker that closed its pipe cleanly while idle (protocol "exit"
      // path) is handled by the EOF branch above like any other death; an
      // idle clean death simply refills.
    }

    // Hang detection: a busy worker silent past the deadline is hung
    // inside an evaluation (or a seeded kHang fault) — SIGKILL it; the
    // EOF shows up on the next poll, but reap it here so the retry starts
    // its backoff immediately.
    const std::int64_t check = NowMs();
    for (std::size_t i = 0; i < pool.slots.size(); ++i) {
      WorkerSlot& slot = pool.slots[i];
      if (!slot.alive() || !slot.busy) continue;
      if (check - slot.last_activity_ms <= hang_timeout_ms) continue;
      ::kill(slot.pid, SIGKILL);
      ++report.hangs_killed;
      HandleWorkerDeath(
          pool, i,
          StrFormat("hung (no activity for %.1f s; SIGKILLed, %s)",
                    static_cast<double>(check - slot.last_activity_ms) /
                        1000.0,
                    ReapWorker(slot).c_str()));
    }

    // Aggregate ack progress (resolved() already counts the resume
    // watermark) for the ProgressReporter's rate/ETA fold.
    obs::WorkerProgress::Global().Publish(
        tracker.resolved() - options.first_item,
        num_items > options.first_item ? num_items - options.first_item : 0);
  }

  // Shutdown: polite exit frames first, then force.
  for (WorkerSlot& slot : pool.slots) {
    if (!slot.alive()) continue;
    json::Value exit_frame;
    exit_frame["type"] = "exit";
    if (slot.writer != nullptr) (void)slot.writer->WriteFrame(exit_frame);
  }
  // Drain the result pipes to EOF (bounded by the grace deadline) before
  // reaping: the last shard's telemetry and the exit-time snapshots are
  // written AFTER the final item ack that ended the main loop, so skipping
  // this phase would lose them in the pipe.
  const std::int64_t drain_deadline = NowMs() + 2000;
  for (;;) {
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t i = 0; i < pool.slots.size(); ++i) {
      if (pool.slots[i].alive() && pool.slots[i].res_fd != -1) {
        fds.push_back({pool.slots[i].res_fd, POLLIN, 0});
        fd_slot.push_back(i);
      }
    }
    if (fds.empty()) break;
    const std::int64_t left = drain_deadline - NowMs();
    if (left <= 0) break;
    const int n_ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               static_cast<int>(std::min<std::int64_t>(left, 100)));
    if (n_ready == -1 && errno != EINTR) break;
    if (n_ready <= 0) continue;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t i = fd_slot[k];
      WorkerSlot& slot = pool.slots[i];
      bool closed = false;
      for (;;) {
        const FrameReader::FillStatus status = slot.reader->Fill();
        json::Value frame;
        try {
          while (slot.reader->NextFrame(&frame)) {
            // Only telemetry matters now; stray result frames from an
            // abandoned shard are discarded (their items stay unresolved).
            (void)HandleTelemetryFrame(pool, i,
                                       frame.GetString("type", ""), frame);
          }
        } catch (const ConfigError&) {
          closed = true;  // corrupt tail during shutdown: stop reading
          break;
        }
        if (status == FrameReader::FillStatus::kWouldBlock) break;
        if (status == FrameReader::FillStatus::kEof ||
            status == FrameReader::FillStatus::kError) {
          closed = true;
          break;
        }
      }
      if (closed) {
        // EOF after the exit frame: the worker is gone (or going); reap it
        // here so the force loop below skips it.
        FinalizeSlotMetrics(pool, i);
        (void)ReapWorker(slot);
        CloseSlotFds(slot);
        PublishAlive(pool);
      }
    }
  }
  const std::int64_t grace_deadline = NowMs() + 2000;
  for (WorkerSlot& slot : pool.slots) {
    if (!slot.alive()) continue;
    bool reaped = false;
    while (NowMs() < grace_deadline) {
      int status = 0;
      const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      if (r == slot.pid || (r == -1 && errno != EINTR)) {
        reaped = true;
        break;
      }
      struct timespec nap {0, 10 * 1000 * 1000};  // 10 ms
      ::nanosleep(&nap, nullptr);
    }
    if (!reaped) {
      ::kill(slot.pid, SIGKILL);
      int status = 0;
      while (::waitpid(slot.pid, &status, 0) == -1 && errno == EINTR) {
      }
    }
    slot.pid = -1;
    CloseSlotFds(slot);
  }
  PublishAlive(pool);
  ::sigaction(SIGPIPE, &saved_pipe, nullptr);

  // Ingest the workers' telemetry into the global registry: once per slot
  // under a dist.worker.N. tag, and once merged into the shared names so
  // e.g. exec_search.eval_latency aggregates across every worker exactly
  // as the in-process run would have populated it.
  if (metrics.enabled()) {
    obs::MetricsSnapshot aggregate;
    for (std::size_t i = 0; i < pool.slots.size(); ++i) {
      FinalizeSlotMetrics(pool, i);
      const obs::MetricsSnapshot& per_slot = pool.finalized_metrics[i];
      if (per_slot.empty()) continue;
      metrics.Ingest(per_slot,
                     StrFormat("dist.worker.%d.", static_cast<int>(i)));
      aggregate.Merge(per_slot);
    }
    if (!aggregate.empty()) metrics.Ingest(aggregate, "");
  }
  obs::WorkerProgress::Global().Reset();

  if (!startup_error.empty()) {
    throw ConfigError("dist supervisor: " + startup_error);
  }
  report.complete = tracker.AllResolved() && !stopped;
  return report;
}

#else  // !CALCULON_DIST_HAVE_FORK

bool ForkAvailable() { return false; }

SupervisorReport RunSupervised(const json::Value&, std::uint64_t,
                               const SupervisorOptions&,
                               const SupervisorCallbacks&) {
  throw ConfigError(
      "dist supervisor: fork-based workers are unavailable on this "
      "platform; run in-process instead");
}

#endif  // CALCULON_DIST_HAVE_FORK

}  // namespace calculon::dist
