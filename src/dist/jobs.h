// Sweep jobs: the unit of work a supervised worker pool executes.
//
// A Job is a sweep expressed as an indexed list of independent items
// (study rows, exec-search triples, audit pairs) that is (a) fully
// described by one JSON spec, and (b) rebuildable from that spec to an
// identical item list on both sides of a fork. The parent builds the job
// to learn num_items and interpret results; each worker builds the same
// job from the same spec and evaluates the items it is assigned. Item
// results are themselves JSON (doubles as %.17g, lossless), so a
// supervised sweep merges to bit-identical output.
#pragma once

#include <cstdint>
#include <memory>

#include "json/json.h"

namespace calculon::dist {

class Job {
 public:
  virtual ~Job() = default;

  [[nodiscard]] virtual std::uint64_t num_items() const = 0;

  // The deterministic fault-injection key of item `item` — consulted by
  // the worker (MaybeInjectProcess) immediately before evaluating it, so
  // a seeded process fault re-fires on every retry of the same item.
  [[nodiscard]] virtual std::uint64_t FaultKey(std::uint64_t item) const = 0;

  // Evaluates one item. Per-item model failures are isolated inside the
  // result (never thrown): a throw out of RunItem means the job itself is
  // broken and takes the worker down.
  [[nodiscard]] virtual json::Value RunItem(std::uint64_t item) = 0;
};

// Builds the job described by `spec`, a {"job": "<kind>", ...} object as
// produced by the drivers in dist/drivers.h. Kinds: "study",
// "exec_search", "audit". Throws ConfigError on an unknown kind or a
// malformed spec.
[[nodiscard]] std::unique_ptr<Job> MakeJob(const json::Value& spec);

}  // namespace calculon::dist
