#include "dist/jobs.h"

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "analysis/audit.h"
#include "runner/run_status_json.h"
#include "runner/study.h"
#include "search/exec_search.h"
#include "util/error.h"

namespace calculon::dist {

namespace {

json::Value FailuresToJson(const std::vector<FailureRecord>& failures) {
  json::Array arr;
  arr.reserve(failures.size());
  for (const FailureRecord& f : failures) arr.push_back(ToJson(f));
  return json::Value(std::move(arr));
}

// One study row per item. The worker evaluates with the exact
// EvaluateStudyRow + StudyCsvRow path of Study::RunResilient, so the CSV
// line and the raw sample-rate double it ships back are bit-identical to
// what the in-process loop would have produced.
class StudyJob : public Job {
 public:
  explicit StudyJob(const json::Value& spec)
      : study_(Study::FromJson(spec.at("spec"))),
        execs_(study_.Enumerate()),
        fault_key_base_(
            static_cast<std::uint64_t>(spec.GetInt("fault_key_base", 0))) {}

  [[nodiscard]] std::uint64_t num_items() const override {
    return execs_.size();
  }

  [[nodiscard]] std::uint64_t FaultKey(std::uint64_t item) const override {
    return fault_key_base_ + item;
  }

  [[nodiscard]] json::Value RunItem(std::uint64_t item) override {
    const Execution& e = execs_[item];
    const Result<Stats> r = EvaluateStudyRow(study_, e, FaultKey(item));
    json::Value out;
    out["csv"] = StudyCsvRow(e, r);
    out["ok"] = r.ok();
    if (r.ok()) {
      out["sample_rate"] = r.value().sample_rate.raw();
    } else {
      out["bad_config"] = r.reason() == Infeasible::kBadConfig;
      out["detail"] = r.detail();
    }
    return out;
  }

 private:
  const Study study_;
  const std::vector<Execution> execs_;
  const std::uint64_t fault_key_base_;
};

// One exec-search (t, p, d) triple per item. The worker ships back the
// triple's tallies, its top-k executions (the parent re-evaluates them for
// full Stats — deterministic, so re-evaluation is exact), and the
// isolated hard failures for replay onto the parent's RunContext.
class ExecSearchJob : public Job {
 public:
  explicit ExecSearchJob(const json::Value& spec)
      : app_(Application::FromJson(spec.at("application"))),
        sys_(System::FromJson(spec.at("system"))),
        space_(SearchSpace::FromJson(spec.at("space"))) {
    const json::Value& config = spec.at("config");
    config_.batch_size = config.GetInt("batch_size", 0);
    config_.top_k = static_cast<int>(config.GetInt("top_k", 10));
    num_triples_ = SearchTriples(app_, sys_, space_, config_).size();
  }

  [[nodiscard]] std::uint64_t num_items() const override {
    return num_triples_;
  }

  [[nodiscard]] std::uint64_t FaultKey(std::uint64_t item) const override {
    // Evaluation keys inside triple i are (i << 32) + counter with a
    // 1-based counter, so (i << 32) itself is free for the process-level
    // decision of the whole triple.
    return item << 32;
  }

  [[nodiscard]] json::Value RunItem(std::uint64_t item) override {
    TripleSweep sweep = SweepTriple(app_, sys_, space_, config_, item);
    json::Value out;
    out["evaluated"] = static_cast<std::int64_t>(sweep.evaluated);
    out["feasible"] = static_cast<std::int64_t>(sweep.feasible);
    json::Array rejected;
    rejected.reserve(sweep.rejected.size());
    for (std::uint64_t n : sweep.rejected) {
      rejected.emplace_back(static_cast<std::int64_t>(n));
    }
    out["rejected"] = json::Value(std::move(rejected));
    json::Array best;
    best.reserve(sweep.best.size());
    for (const SearchEntry& entry : sweep.best) {
      best.push_back(entry.exec.ToJson());
    }
    out["best"] = json::Value(std::move(best));
    out["failures"] = FailuresToJson(sweep.failures);
    return out;
  }

 private:
  const Application app_;
  const System sys_;
  const SearchSpace space_;
  SearchConfig config_;
  std::uint64_t num_triples_ = 0;
};

// One (application, system) audit pair per item. The worker runs the full
// AuditPair under a private RunContext and ships the report plus the
// isolated failures.
class AuditJob : public Job {
 public:
  explicit AuditJob(const json::Value& spec) {
    const json::Value& options = spec.at("options");
    for (const json::Value& n : options.at("proc_counts").AsArray()) {
      options_.proc_counts.push_back(n.AsInt());
    }
    options_.max_splits = static_cast<int>(options.GetInt("max_splits", 24));
    options_.rel_tol = options.GetDouble("rel_tol", 1e-9);
    options_.max_violations =
        static_cast<int>(options.GetInt("max_violations", 16));
    for (const json::Value& p : spec.at("pairs").AsArray()) {
      pairs_.push_back(PairSpec{
          Application::FromJson(p.at("application")),
          System::FromJson(p.at("system")),
          p.at("context_label").AsString(),
          static_cast<std::uint64_t>(p.at("fault_key_base").AsInt())});
    }
  }

  [[nodiscard]] std::uint64_t num_items() const override {
    return pairs_.size();
  }

  [[nodiscard]] std::uint64_t FaultKey(std::uint64_t item) const override {
    return pairs_[item].fault_key_base;
  }

  [[nodiscard]] json::Value RunItem(std::uint64_t item) override {
    const PairSpec& pair = pairs_[item];
    RunContext local_ctx;
    local_ctx.set_max_failure_samples(std::numeric_limits<std::size_t>::max());
    analysis::AuditOptions options = options_;
    options.context_label = pair.context_label;
    options.ctx = &local_ctx;
    options.fault_key_base = pair.fault_key_base;
    const analysis::AuditReport report =
        analysis::AuditPair(pair.app, pair.sys, options);
    json::Value out;
    out["report"] = analysis::ReportToJson(report);
    out["failures"] = FailuresToJson(local_ctx.Snapshot().failure_samples);
    return out;
  }

 private:
  struct PairSpec {
    Application app;
    System sys;
    std::string context_label;
    std::uint64_t fault_key_base;
  };
  analysis::AuditOptions options_;
  std::vector<PairSpec> pairs_;
};

}  // namespace

std::unique_ptr<Job> MakeJob(const json::Value& spec) {
  const std::string kind = spec.GetString("job", "");
  if (kind == "study") return std::make_unique<StudyJob>(spec);
  if (kind == "exec_search") return std::make_unique<ExecSearchJob>(spec);
  if (kind == "audit") return std::make_unique<AuditJob>(spec);
  throw ConfigError("dist: unknown job kind '" + kind + "'");
}

}  // namespace calculon::dist
