// Deterministic exponential backoff for shard reassignment.
//
// When a worker dies on a shard, the supervisor does not re-dispatch the
// suspect item immediately: a crash caused by a transient condition (an
// OOM kill under memory pressure, a wedged filesystem) deserves breathing
// room, and a deterministic schedule keeps retry behavior reproducible and
// pinnable in tests. No jitter on purpose — the supervisor runs a single
// event loop, so synchronized retries cannot stampede anything.
#pragma once

#include <cstdint>

namespace calculon::dist {

// Delay before retry number `attempt` (1-based): base_ms * 2^(attempt-1),
// saturating at max_ms. attempt <= 0 is treated as 1; the shift saturates
// long before it could overflow.
[[nodiscard]] std::int64_t BackoffDelayMs(int attempt, std::int64_t base_ms,
                                          std::int64_t max_ms);

}  // namespace calculon::dist
