// Supervised multi-process fan-out: fork-based worker pool with death and
// hang detection, bounded-retry reassignment with exponential backoff,
// and poison-candidate quarantine.
//
// The supervisor forks N workers (same binary, no exec — see
// dist/worker.h for the wire protocol), dispatches contiguous item shards
// over pipes, and runs a single-threaded poll() event loop over the
// worker result pipes. It detects
//
//   * death  — EOF on the result pipe, classified via waitpid (exit code
//              or terminating signal, e.g. an injected SIGSEGV/SIGABRT),
//   * hangs  — a busy worker that has streamed nothing for longer than
//              hang_timeout_s is SIGKILLed (per-item activity is the
//              heartbeat: workers ack every item as it completes),
//
// and reassigns the failed shard after a deterministic exponential
// backoff. The *suspect* — the first un-acked item of the dead worker's
// shard — carries the blame; after max_attempts the suspect is
// quarantined (reported to the driver as a FailureRecord-shaped event,
// the sweep continues degraded) and the rest of the shard is re-dispatched
// immediately. Deterministic seeded process faults re-fire on every retry
// of the same item, so a faulted run quarantines exactly the items whose
// fault decision is a process kind — which is what makes "the quarantine
// list equals the injected process faults" a testable property.
//
// The supervisor itself is single-threaded; results reach the driver via
// callbacks on the supervising thread, in arrival order (the drivers in
// dist/drivers.h reorder into item order to preserve the bit-identical
// deterministic-merge guarantee).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/run_context.h"

namespace calculon::dist {

struct SupervisorOptions {
  int workers = 2;
  std::uint64_t shard_size = 16;
  // Items are dispatched starting here (checkpoint-resume watermark);
  // items below it count as already resolved.
  std::uint64_t first_item = 0;
  // Attempts per suspect item before quarantine (>= 1).
  int max_attempts = 3;
  std::int64_t backoff_base_ms = 10;
  std::int64_t backoff_max_ms = 2000;
  // A busy worker silent for this long is declared hung and SIGKILLed.
  double hang_timeout_s = 30.0;
  // Optional cooperative stop (cancellation / deadline / failure budget),
  // polled every loop iteration; in-flight shards are abandoned.
  RunContext* ctx = nullptr;
  // When non-empty, each worker's stderr goes to
  // <dir>/worker-<n>.log (appended across restarts), and flight-recorder
  // post-mortems are dumped there for every busy worker death.
  std::string worker_log_dir;
  // Capacity of each worker's crash flight recorder — the bounded ring of
  // recent spans/instants kept even when tracing is off, mirrored by the
  // supervisor and dumped to a post-mortem file when the worker is
  // quarantined (see docs/observability.md). 0 disables.
  int flight_capacity = 64;
  // FaultPlan spec shipped to workers verbatim (see FaultPlan::ToSpec).
  std::string faults_spec;
};

struct SupervisorReport {
  std::uint64_t forked = 0;        // processes forked, incl. replacements
  std::uint64_t restarts = 0;      // replacement workers after death/hang
  std::uint64_t reassigned = 0;    // shard re-dispatches
  std::uint64_t hangs_killed = 0;  // workers SIGKILLed by the hang timeout
  // One record per quarantined poison item; `reason` describes the final
  // death ("quarantined after K attempts; last: signal 11 (SIGSEGV)").
  std::vector<FailureRecord> quarantined;
  bool complete = false;  // every item resolved (acked or quarantined)
};

struct SupervisorCallbacks {
  // One item's result, in ARRIVAL order (not item order). Never invoked
  // twice for the same item.
  std::function<void(std::uint64_t item, const json::Value& result)> on_item;
  // A quarantined item: no result will ever arrive for it.
  std::function<void(const FailureRecord& record)> on_quarantine;
};

// True when this platform can fork supervised workers (POSIX fork + pipes).
[[nodiscard]] bool ForkAvailable();

// Runs `job_spec` (dist/jobs.h) for items [options.first_item, num_items)
// across a supervised worker pool. Blocks until every item is resolved,
// the RunContext stops the run, or worker startup fails repeatedly
// (ConfigError — e.g. the job spec itself crashes every worker).
[[nodiscard]] SupervisorReport RunSupervised(
    const json::Value& job_spec, std::uint64_t num_items,
    const SupervisorOptions& options, const SupervisorCallbacks& callbacks);

}  // namespace calculon::dist
