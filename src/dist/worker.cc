#include "dist/worker.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "dist/jobs.h"
#include "dist/wire.h"
#include "json/json.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/fault_injection.h"

namespace calculon::dist {

namespace {

// Configures the worker-side telemetry from the init frame's "telemetry"
// object. Tracing aligns onto the supervisor's timeline: the steady clock
// is shared across fork(), so adopting the parent recorder's start_ns
// makes worker timestamps land on the same axis as supervisor events.
void ConfigureTelemetry(const json::Value& frame) {
  if (!frame.contains("telemetry")) return;
  const json::Value& telemetry = frame.at("telemetry");
  if (telemetry.GetBool("metrics", false)) {
    obs::MetricsRegistry::Global().Enable();
  }
  if (telemetry.GetBool("trace", false)) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.Start();
    const std::int64_t start_ns = telemetry.GetInt("trace_start_ns", 0);
    if (start_ns != 0) recorder.AlignStart(start_ns);
  }
  const auto flight_capacity =
      static_cast<std::size_t>(telemetry.GetInt("flight_capacity", 0));
  if (flight_capacity > 0) {
    obs::FlightRecorder::Global().Enable(flight_capacity);
  }
}

// Ships undrained flight-ring entries. Called before each item evaluation
// so the supervisor's mirror holds this worker's last actions even when
// the very next step kills the process (crash, hang-SIGKILL).
[[nodiscard]] bool FlushFlight(FrameWriter& writer) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  if (!flight.enabled()) return true;
  obs::FlightRecorder::Drained drained = flight.DrainNew();
  if (drained.events.empty() && drained.dropped == 0) return true;
  json::Value frame;
  frame["type"] = "flight";
  frame["events"] = json::Value(std::move(drained.events));
  frame["dropped"] = static_cast<std::int64_t>(drained.dropped);
  return writer.WriteFrame(frame);
}

// Ships the cumulative metrics snapshot and any buffered trace events.
// Called from quiescent points (before shard_done, before exit). All
// telemetry frames are purely observational — the supervisor's reorder
// buffers never see them, preserving bit-identical outputs.
[[nodiscard]] bool SendTelemetry(FrameWriter& writer) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    json::Value frame;
    frame["type"] = "metrics_snapshot";
    frame["metrics"] = metrics.Snapshot().ToJson();
    if (!writer.WriteFrame(frame)) return false;
  }
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  if (recorder.enabled()) {
    obs::TraceRecorder::Chunk chunk = recorder.DrainChunk();
    if (!chunk.events.empty() || chunk.dropped > 0) {
      json::Value frame;
      frame["type"] = "trace_chunk";
      frame["events"] = json::Value(std::move(chunk.events));
      frame["dropped"] = static_cast<std::int64_t>(chunk.dropped);
      if (!writer.WriteFrame(frame)) return false;
    }
  }
  return FlushFlight(writer);
}

int WorkerLoop(FrameReader& reader, FrameWriter& writer) {
  std::unique_ptr<Job> job;
  auto& faults = testing::FaultInjector::Global();
  auto& flight = obs::FlightRecorder::Global();
  json::Value frame;
  while (reader.ReadFrameBlocking(&frame)) {
    const std::string type = frame.GetString("type", "");
    if (type == "init") {
      faults.Configure(
          testing::FaultPlan::FromSpec(frame.GetString("faults", "")));
      ConfigureTelemetry(frame);
      job = MakeJob(frame.at("job"));
      flight.RecordInstant("ready");
      json::Value ready;
      ready["type"] = "ready";
      if (!writer.WriteFrame(ready)) return 1;
    } else if (type == "shard") {
      if (job == nullptr) return 1;  // shard before init: corrupt parent
      const auto begin = static_cast<std::uint64_t>(frame.at("begin").AsInt());
      const auto end = static_cast<std::uint64_t>(frame.at("end").AsInt());
      flight.RecordInstant("shard_begin", begin);
      for (std::uint64_t i = begin; i < end && i < job->num_items(); ++i) {
        // Flight evidence must reach the supervisor BEFORE the fault
        // decision / evaluation that may kill this process: record the
        // item marker, then flush, then evaluate.
        flight.RecordInstant("item_begin", i);
        if (!FlushFlight(writer)) return 1;
        // The process-level fault decision fires before the evaluation:
        // an aborted/hung item never acks, so the supervisor's suspect is
        // exactly this item, on every retry.
        faults.MaybeInjectProcess(job->FaultKey(i));
        const double t0 = obs::MonotonicMicros();
        json::Value item;
        item["type"] = "item";
        item["index"] = static_cast<std::int64_t>(i);
        item["result"] = job->RunItem(i);
        flight.RecordSpan("item_done", i, t0, obs::MonotonicMicros() - t0);
        if (!writer.WriteFrame(item)) return 1;
      }
      flight.RecordInstant("shard_done", begin);
      if (!SendTelemetry(writer)) return 1;
      json::Value done;
      done["type"] = "shard_done";
      done["begin"] = static_cast<std::int64_t>(begin);
      done["end"] = static_cast<std::int64_t>(end);
      if (!writer.WriteFrame(done)) return 1;
    } else if (type == "exit") {
      // Final cumulative telemetry; the supervisor drains the pipe to EOF
      // during shutdown, so these frames are never lost.
      (void)SendTelemetry(writer);
      return 0;
    } else {
      return 1;  // unknown frame: corrupt parent
    }
  }
  // Parent closed the command pipe without an exit frame (it died or gave
  // up on us): quiet, clean exit.
  return 0;
}

}  // namespace

int WorkerMain(int in_fd, int out_fd) {
  // First things first: the fork inherited the parent's obs globals —
  // including mutexes in whatever state other parent threads (a progress
  // reporter, a tracing thread pool) held them at the instant of fork().
  // Re-create them before anything can touch telemetry.
  obs::TraceRecorder::Global().ReinitAfterFork();
  obs::MetricsRegistry::Global().ReinitAfterFork();
  FrameReader reader(in_fd);
  FrameWriter writer(out_fd);
  try {
    return WorkerLoop(reader, writer);
  } catch (const std::exception& ex) {
    // A throw out of the loop means the job itself is broken (malformed
    // spec, job-construction bug) — not a per-item failure, those are
    // isolated inside RunItem. Log and die; the supervisor sees the exit.
    std::fprintf(stderr, "calculon worker: fatal: %s\n", ex.what());
    return 1;
  }
}

}  // namespace calculon::dist
