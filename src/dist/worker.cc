#include "dist/worker.h"

#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "dist/jobs.h"
#include "dist/wire.h"
#include "json/json.h"
#include "testing/fault_injection.h"

namespace calculon::dist {

namespace {

int WorkerLoop(FrameReader& reader, FrameWriter& writer) {
  std::unique_ptr<Job> job;
  auto& faults = testing::FaultInjector::Global();
  json::Value frame;
  while (reader.ReadFrameBlocking(&frame)) {
    const std::string type = frame.GetString("type", "");
    if (type == "init") {
      faults.Configure(
          testing::FaultPlan::FromSpec(frame.GetString("faults", "")));
      job = MakeJob(frame.at("job"));
      json::Value ready;
      ready["type"] = "ready";
      if (!writer.WriteFrame(ready)) return 1;
    } else if (type == "shard") {
      if (job == nullptr) return 1;  // shard before init: corrupt parent
      const auto begin = static_cast<std::uint64_t>(frame.at("begin").AsInt());
      const auto end = static_cast<std::uint64_t>(frame.at("end").AsInt());
      for (std::uint64_t i = begin; i < end && i < job->num_items(); ++i) {
        // The process-level fault decision fires before the evaluation:
        // an aborted/hung item never acks, so the supervisor's suspect is
        // exactly this item, on every retry.
        faults.MaybeInjectProcess(job->FaultKey(i));
        json::Value item;
        item["type"] = "item";
        item["index"] = static_cast<std::int64_t>(i);
        item["result"] = job->RunItem(i);
        if (!writer.WriteFrame(item)) return 1;
      }
      json::Value done;
      done["type"] = "shard_done";
      done["begin"] = static_cast<std::int64_t>(begin);
      done["end"] = static_cast<std::int64_t>(end);
      if (!writer.WriteFrame(done)) return 1;
    } else if (type == "exit") {
      return 0;
    } else {
      return 1;  // unknown frame: corrupt parent
    }
  }
  // Parent closed the command pipe without an exit frame (it died or gave
  // up on us): quiet, clean exit.
  return 0;
}

}  // namespace

int WorkerMain(int in_fd, int out_fd) {
  FrameReader reader(in_fd);
  FrameWriter writer(out_fd);
  try {
    return WorkerLoop(reader, writer);
  } catch (const std::exception& ex) {
    // A throw out of the loop means the job itself is broken (malformed
    // spec, job-construction bug) — not a per-item failure, those are
    // isolated inside RunItem. Log and die; the supervisor sees the exit.
    std::fprintf(stderr, "calculon worker: fatal: %s\n", ex.what());
    return 1;
  }
}

}  // namespace calculon::dist
