// NDJSON framing over pipes: the supervisor <-> worker wire format.
//
// Every message is one JSON document serialized compactly (Dump(0), which
// is single-line by construction: the serializer emits no newlines at
// indent 0 and the JSON grammar escapes newlines inside strings) followed
// by '\n'. Doubles travel as %.17g, so numeric results round-trip
// losslessly — the property the bit-identical merge guarantee rests on.
//
// Framing failure modes are first-class: a worker that dies mid-write
// leaves a dangling partial line, which the reader reports as truncation
// (distinct from a clean EOF at a frame boundary) so the supervisor can
// tell "finished and closed" from "died mid-message".
#pragma once

#include <string>

#include "json/json.h"

namespace calculon::dist {

// Writes frames to a file descriptor with blocking writes. Not owning;
// the caller closes the fd.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  // Serializes and writes one frame. Returns false when the peer is gone
  // (EPIPE / write error) — the caller treats that as a dead peer, never
  // as a crash (the supervisor runs with SIGPIPE ignored).
  [[nodiscard]] bool WriteFrame(const json::Value& value);

 private:
  int fd_;
};

// Incremental frame reader. Usable both non-blocking (the supervisor's
// poll loop calls Fill() when the fd is readable, then drains NextFrame())
// and blocking (the worker calls ReadFrameBlocking()).
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  enum class FillStatus {
    kData,        // appended at least one byte
    kEof,         // peer closed its end
    kWouldBlock,  // non-blocking fd with nothing available
    kError,       // read() failed hard
  };

  // One read() into the internal buffer.
  FillStatus Fill();

  // Pops the next complete frame, if one is buffered. Throws ConfigError
  // on a malformed frame (the caller treats that as a corrupt peer).
  [[nodiscard]] bool NextFrame(json::Value* out);

  // After Fill() returned kEof: the stream ended mid-line, i.e. the
  // writer died partway through a message.
  [[nodiscard]] bool truncated() const { return eof_ && !buffer_.empty(); }
  [[nodiscard]] bool eof() const { return eof_; }

  // Blocking convenience for the worker loop: fills until a frame is
  // complete. Returns false on EOF (truncated or not).
  [[nodiscard]] bool ReadFrameBlocking(json::Value* out);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace calculon::dist
