#include "dist/backoff.h"

#include <algorithm>

namespace calculon::dist {

std::int64_t BackoffDelayMs(int attempt, std::int64_t base_ms,
                            std::int64_t max_ms) {
  if (base_ms <= 0) return 0;
  const int exponent = std::min(std::max(attempt, 1) - 1, 62);
  if (exponent >= 62 || base_ms > (max_ms >> exponent)) return max_ms;
  return std::min(base_ms << exponent, max_ms);
}

}  // namespace calculon::dist
