// Shard bookkeeping for the supervised worker pool: which items are
// dispatched, acked, retried, or quarantined.
//
// The tracker is pure accounting — no I/O, no clocks, no processes — so
// the retry/backoff/quarantine semantics are testable without forking
// anything. The supervisor drives it from its event loop; the class is
// nonetheless mutex-guarded (and annotated) because progress reporters
// may sample it from another thread.
//
// Failure model: workers stream per-item acks in order within a shard, so
// when a worker dies the *suspect* is the first un-acked item of its
// shard — the item it was evaluating. The suspect's attempt count
// increments; after max_attempts the item is quarantined (a poison
// candidate: deterministic process faults re-fire on every retry, so
// retrying forever would never converge) and the remainder of the shard
// is re-dispatched. Quarantined items count as resolved, which guarantees
// the sweep always terminates.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace calculon::dist {

// A contiguous, half-open range of sweep items: the dispatch unit.
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] bool empty() const { return begin >= end; }
};

struct ShardTrackerOptions {
  std::uint64_t num_items = 0;
  // Dispatch starts here (checkpoint-resume watermark); items below it
  // count as already resolved.
  std::uint64_t first_item = 0;
  std::uint64_t shard_size = 16;
  // Attempts per suspect item before it is quarantined (>= 1).
  int max_attempts = 3;
  std::int64_t backoff_base_ms = 10;
  std::int64_t backoff_max_ms = 2000;
};

class ShardTracker {
 public:
  explicit ShardTracker(const ShardTrackerOptions& options);

  // Claims the next never-dispatched shard. Returns false when the whole
  // range has been handed out (retries are the supervisor's re-dispatch
  // queue, not the tracker's).
  [[nodiscard]] bool Claim(ShardRange* out) CALC_EXCLUDES(mutex_);

  // One item's result was received (acked).
  void OnItemDone(std::uint64_t item) CALC_EXCLUDES(mutex_);

  // Outcome of a worker failure on a shard.
  struct FailureOutcome {
    bool quarantined = false;    // the suspect hit max_attempts
    std::uint64_t suspect = 0;   // first un-acked item of the shard
    int attempt = 0;             // its attempt count so far
    std::int64_t backoff_ms = 0; // delay before `retry` (0 on quarantine)
    ShardRange retry;            // what to re-dispatch (may be empty)
  };

  // The worker owning `shard` died or hung after acking items
  // [shard.begin, acked_up_to). Returns the retry decision; quarantined
  // items are marked resolved here.
  [[nodiscard]] FailureOutcome OnShardFailure(ShardRange shard,
                                              std::uint64_t acked_up_to)
      CALC_EXCLUDES(mutex_);

  // Every item acked or quarantined.
  [[nodiscard]] bool AllResolved() const CALC_EXCLUDES(mutex_);

  // Items never yet dispatched (the remaining claimable span). Lets the
  // supervisor size its pool refill without consuming a claim.
  [[nodiscard]] std::uint64_t unclaimed() const CALC_EXCLUDES(mutex_);

  [[nodiscard]] std::uint64_t resolved() const CALC_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<std::uint64_t> quarantined() const
      CALC_EXCLUDES(mutex_);

 private:
  const ShardTrackerOptions options_;

  mutable Mutex mutex_;
  std::uint64_t next_ CALC_GUARDED_BY(mutex_) = 0;  // dispatch cursor
  std::uint64_t resolved_ CALC_GUARDED_BY(mutex_) = 0;
  std::map<std::uint64_t, int> attempts_ CALC_GUARDED_BY(mutex_);
  std::set<std::uint64_t> quarantined_ CALC_GUARDED_BY(mutex_);
};

}  // namespace calculon::dist
