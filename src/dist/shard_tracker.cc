#include "dist/shard_tracker.h"

#include <algorithm>

#include "dist/backoff.h"
#include "util/check.h"

namespace calculon::dist {

ShardTracker::ShardTracker(const ShardTrackerOptions& options)
    : options_(options) {
  CALC_CHECK(options_.shard_size > 0, "shard_size must be positive");
  CALC_CHECK(options_.max_attempts >= 1, "max_attempts must be >= 1");
  CALC_CHECK(options_.first_item <= options_.num_items,
             "first_item past the end of the sweep");
  next_ = options_.first_item;
  resolved_ = options_.first_item;
}

bool ShardTracker::Claim(ShardRange* out) {
  MutexLock lock(mutex_);
  if (next_ >= options_.num_items) return false;
  out->begin = next_;
  out->end = std::min(next_ + options_.shard_size, options_.num_items);
  next_ = out->end;
  return true;
}

void ShardTracker::OnItemDone(std::uint64_t item) {
  (void)item;
  MutexLock lock(mutex_);
  ++resolved_;
}

ShardTracker::FailureOutcome ShardTracker::OnShardFailure(
    ShardRange shard, std::uint64_t acked_up_to) {
  MutexLock lock(mutex_);
  FailureOutcome outcome;
  if (acked_up_to >= shard.end) {
    // Every item of the shard was acked before the worker died (it fell
    // over between shards): nothing to retry, nobody to blame.
    return outcome;
  }
  outcome.suspect = std::max(shard.begin, acked_up_to);
  outcome.attempt = ++attempts_[outcome.suspect];
  if (outcome.attempt >= options_.max_attempts) {
    outcome.quarantined = true;
    quarantined_.insert(outcome.suspect);
    ++resolved_;  // quarantined counts as resolved: the sweep terminates
    outcome.retry = ShardRange{outcome.suspect + 1, shard.end};
    outcome.backoff_ms = 0;  // the poison item is gone; no need to wait
  } else {
    outcome.retry = ShardRange{outcome.suspect, shard.end};
    outcome.backoff_ms = BackoffDelayMs(
        outcome.attempt, options_.backoff_base_ms, options_.backoff_max_ms);
  }
  return outcome;
}

std::uint64_t ShardTracker::unclaimed() const {
  MutexLock lock(mutex_);
  return options_.num_items - next_;
}

bool ShardTracker::AllResolved() const {
  MutexLock lock(mutex_);
  return resolved_ >= options_.num_items;
}

std::uint64_t ShardTracker::resolved() const {
  MutexLock lock(mutex_);
  return resolved_;
}

std::vector<std::uint64_t> ShardTracker::quarantined() const {
  MutexLock lock(mutex_);
  return {quarantined_.begin(), quarantined_.end()};
}

}  // namespace calculon::dist
