// String helpers shared by the JSON parser and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace calculon {

[[nodiscard]] std::vector<std::string> Split(std::string_view s, char sep);
[[nodiscard]] std::string_view Trim(std::string_view s);
[[nodiscard]] std::string ToLower(std::string_view s);
[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
[[nodiscard]] std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace calculon
