#include "util/check.h"

namespace calculon::internal {

void ContractFail(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::string what =
      StrFormat("contract violation at %s:%d: %s", file, line, expr);
  if (!message.empty()) {
    what += " (";
    what += message;
    what += ")";
  }
  throw ContractViolation(what);
}

}  // namespace calculon::internal
