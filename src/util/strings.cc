#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace calculon {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const std::size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const std::size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace calculon
