#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace calculon {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::AddRule() { rows_.emplace_back(); }

std::string Table::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  std::ostringstream os;
  emit_rule(os);
  emit_row(os, header_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_rule(os);
  return os.str();
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.ToString();
}

}  // namespace calculon
