// Lightweight status/result types.
//
// Infeasible configurations are the common case when sweeping the execution
// space (the paper reports only ~18% of GPT-3 strategies are feasible), so
// the model reports them through a cheap status value instead of exceptions.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace calculon {

// Why a configuration cannot run. Order matters only for reporting.
enum class Infeasible {
  kNone = 0,
  kBadPartition,      // t*p*d != processor count, or degrees out of range
  kIndivisibleHeads,  // tensor parallelism does not divide attention heads
  kIndivisibleBlocks, // pipeline parallelism / interleaving does not divide
                      // the transformer block count
  kIndivisibleBatch,  // batch not divisible by data parallelism * microbatch
  kIncompatibleOptions, // mutually exclusive execution options
  kMemoryCapacity,    // tier-1 memory requirement exceeds capacity
  kOffloadCapacity,   // tier-2 memory requirement exceeds capacity
  kNetworkSize,       // a communicator does not fit any network
  kBadConfig,         // malformed application/system/execution description
};

[[nodiscard]] const char* ToString(Infeasible reason);

// Inverse of ToString: parses the exact strings ToString produces.
// Throws ConfigError on anything else, so serialized reasons (checkpoints,
// failure records) round-trip losslessly.
[[nodiscard]] Infeasible InfeasibleFromString(const std::string& s);

// Minimal expected-like result: either a value or an Infeasible reason with
// an optional human-readable detail string.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Infeasible reason, std::string detail = {})
      : data_(Error{reason, std::move(detail)}) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + detail());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value() on error: " + detail());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value() on error: " + detail());
    return std::get<T>(std::move(data_));
  }

  // Value if ok, otherwise `fallback` — the safe accessor for sweep code
  // that treats an infeasible point as a neutral default instead of risking
  // a value()-on-error throw.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }
  [[nodiscard]] T value_or(T fallback) && {
    return ok() ? std::get<T>(std::move(data_)) : std::move(fallback);
  }

  [[nodiscard]] Infeasible reason() const {
    return ok() ? Infeasible::kNone : std::get<Error>(data_).reason;
  }
  [[nodiscard]] std::string detail() const {
    if (ok()) return {};
    const Error& e = std::get<Error>(data_);
    std::string s = ToString(e.reason);
    if (!e.detail.empty()) s += ": " + e.detail;
    return s;
  }

 private:
  struct Error {
    Infeasible reason;
    std::string detail;
  };
  std::variant<T, Error> data_;
};

// Thrown for programmer/config errors that are not part of the modeled
// search space (e.g. malformed JSON, unknown preset names).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace calculon
