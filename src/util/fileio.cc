#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace calculon {

namespace {

[[noreturn]] void ThrowIo(const std::string& what, const std::string& path) {
  throw ConfigError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void WriteFileAtomic(const std::string& path, const std::string& contents) {
  // The temporary lives in the destination directory (rename() must not
  // cross filesystems) and carries the pid so two processes checkpointing
  // the same journal never trample each other's temp file.
  const std::string tmp =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowIo("cannot create", tmp);

  const char* data = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      ThrowIo("cannot write", tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a power loss could surface the rename
  // (metadata) without the data, i.e. a complete-looking empty file.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    ThrowIo("cannot sync", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    ThrowIo("cannot rename over", path);
  }
}

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace calculon
