#include "util/error.h"

namespace calculon {

const char* ToString(Infeasible reason) {
  switch (reason) {
    case Infeasible::kNone: return "ok";
    case Infeasible::kBadPartition: return "bad partition";
    case Infeasible::kIndivisibleHeads: return "tp does not divide heads";
    case Infeasible::kIndivisibleBlocks: return "pp does not divide blocks";
    case Infeasible::kIndivisibleBatch: return "dp*microbatch does not divide batch";
    case Infeasible::kIncompatibleOptions: return "incompatible options";
    case Infeasible::kMemoryCapacity: return "insufficient memory capacity";
    case Infeasible::kOffloadCapacity: return "insufficient offload capacity";
    case Infeasible::kNetworkSize: return "communicator exceeds network size";
    case Infeasible::kBadConfig: return "bad configuration";
  }
  return "unknown";
}

Infeasible InfeasibleFromString(const std::string& s) {
  static constexpr Infeasible kAll[] = {
      Infeasible::kNone,
      Infeasible::kBadPartition,
      Infeasible::kIndivisibleHeads,
      Infeasible::kIndivisibleBlocks,
      Infeasible::kIndivisibleBatch,
      Infeasible::kIncompatibleOptions,
      Infeasible::kMemoryCapacity,
      Infeasible::kOffloadCapacity,
      Infeasible::kNetworkSize,
      Infeasible::kBadConfig,
  };
  for (Infeasible reason : kAll) {
    if (s == ToString(reason)) return reason;
  }
  throw ConfigError("unknown Infeasible string: '" + s + "'");
}

}  // namespace calculon
