// Unit helpers: byte quantities (IEC and SI), rates, and human-readable
// formatting used throughout the model and its report printers.
//
// The formatters are a report-format boundary of the dimensional-safety
// policy (util/quantity.h): the typed overloads are the preferred entry
// points; the raw-double overloads remain for values that are already
// outside the type system (JSON round-trips, table cells).
#pragma once

#include <cstdint>
#include <string>

#include "util/quantity.h"

namespace calculon {

// IEC (binary) byte units.
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;
constexpr double kTiB = 1024.0 * kGiB;

// SI (decimal) units, used for bandwidths and FLOP rates.
constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;
constexpr double kPeta = 1e15;

// Formats a byte count with a binary suffix, e.g. "17.4 GiB".
[[nodiscard]] std::string FormatBytes(double bytes);  // unit-ok: format boundary
[[nodiscard]] std::string FormatBytes(Bytes bytes);

// Formats a bytes-per-second rate with a decimal suffix, e.g. "593 GB/s".
[[nodiscard]] std::string FormatBandwidth(double bytes_per_s);  // unit-ok: format boundary
[[nodiscard]] std::string FormatBandwidth(BytesPerSecond rate);

// Formats a FLOP/s rate, e.g. "312 Tflop/s".
[[nodiscard]] std::string FormatFlops(double flops_per_s);  // unit-ok: format boundary
[[nodiscard]] std::string FormatFlops(FlopsPerSecond rate);

// Formats a FLOP count, e.g. "232 Gflop".
[[nodiscard]] std::string FormatFlopCount(double flops);  // unit-ok: format boundary
[[nodiscard]] std::string FormatFlopCount(Flops flops);

// Formats a duration in seconds with an adaptive unit, e.g. "16.7 s",
// "231 ms", "4.2 us".
[[nodiscard]] std::string FormatTime(double seconds);  // unit-ok: format boundary
[[nodiscard]] std::string FormatTime(Seconds seconds);

// Formats a plain double with `digits` significant decimals, trimming
// trailing zeros ("16.70" -> "16.7").
[[nodiscard]] std::string FormatNumber(double value, int digits = 3);

// Formats a ratio as a percentage, e.g. 0.2934 -> "29.3%".
[[nodiscard]] std::string FormatPercent(double fraction, int digits = 1);

}  // namespace calculon
