#include "util/mathutil.h"

#include <algorithm>
#include <stdexcept>

namespace calculon {

std::vector<std::int64_t> Divisors(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("Divisors: n must be >= 1");
  // i*i would overflow before i reaches sqrt(INT64_MAX); the model never
  // enumerates divisors of counts anywhere near that.
  CALC_CHECK(n < (std::int64_t{1} << 62), "Divisors(%lld)",
             static_cast<long long>(n));
  std::vector<std::int64_t> small;
  std::vector<std::int64_t> large;
  for (std::int64_t i = 1; i * i <= n; ++i) {
    if (n % i == 0) {
      small.push_back(i);
      if (i != n / i) large.push_back(n / i);
    }
  }
  small.insert(small.end(), large.rbegin(), large.rend());
  return small;
}

std::vector<Triple> FactorTriples(std::int64_t n) {
  std::vector<Triple> out;
  for (std::int64_t t : Divisors(n)) {
    const std::int64_t rest = n / t;
    for (std::int64_t p : Divisors(rest)) {
      out.push_back({t, p, rest / p});
    }
  }
  return out;
}

std::int64_t NextDivisor(std::int64_t n, std::int64_t lo) {
  for (std::int64_t d : Divisors(n)) {
    if (d >= lo) return d;
  }
  return n;
}

bool CheckedMul(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}

}  // namespace calculon
