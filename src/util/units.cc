#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace calculon {
namespace {

std::string FormatScaled(double value, double base,
                         const std::array<const char*, 6>& suffixes,
                         const char* unit) {
  double scaled = value;
  std::size_t idx = 0;
  while (std::fabs(scaled) >= base && idx + 1 < suffixes.size()) {
    scaled /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g %s%s", scaled, suffixes[idx], unit);
  return buf;
}

}  // namespace

std::string FormatBytes(double bytes) {
  static constexpr std::array<const char*, 6> kSuffixes = {"",   "Ki", "Mi",
                                                           "Gi", "Ti", "Pi"};
  return FormatScaled(bytes, 1024.0, kSuffixes, "B");
}

std::string FormatBandwidth(double bytes_per_s) {
  static constexpr std::array<const char*, 6> kSuffixes = {"", "K", "M",
                                                           "G", "T", "P"};
  return FormatScaled(bytes_per_s, 1000.0, kSuffixes, "B/s");
}

std::string FormatFlops(double flops_per_s) {
  static constexpr std::array<const char*, 6> kSuffixes = {"", "K", "M",
                                                           "G", "T", "P"};
  return FormatScaled(flops_per_s, 1000.0, kSuffixes, "flop/s");
}

std::string FormatFlopCount(double flops) {
  static constexpr std::array<const char*, 6> kSuffixes = {"", "K", "M",
                                                           "G", "T", "P"};
  return FormatScaled(flops, 1000.0, kSuffixes, "flop");
}

std::string FormatTime(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0 || abs == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.4g s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.4g ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.4g us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g ns", seconds * 1e9);
  }
  return buf;
}

std::string FormatBytes(Bytes bytes) { return FormatBytes(bytes.raw()); }

std::string FormatBandwidth(BytesPerSecond rate) {
  return FormatBandwidth(rate.raw());
}

std::string FormatFlops(FlopsPerSecond rate) { return FormatFlops(rate.raw()); }

std::string FormatFlopCount(Flops flops) { return FormatFlopCount(flops.raw()); }

std::string FormatTime(Seconds seconds) { return FormatTime(seconds.raw()); }

std::string FormatNumber(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits + 3, value);
  // %.Ng already trims trailing zeros in most cases; re-format via %f when
  // the value is in a "plain" range for stable table output.
  if (std::fabs(value) >= 1e-3 && std::fabs(value) < 1e7) {
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    std::string s = buf;
    if (s.find('.') != std::string::npos) {
      while (!s.empty() && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.pop_back();
    }
    return s;
  }
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace calculon
