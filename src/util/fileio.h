// Atomic file writes for checkpoints and reports.
//
// A checkpoint journal is only useful if a crash — including a SIGKILL
// mid-write — can never leave a half-written file at the journal path.
// WriteFileAtomic gives that guarantee the classic POSIX way: write the
// full contents to a unique temporary in the same directory, fsync it,
// then rename() it over the destination. rename() within one filesystem
// is atomic, so a reader (or a resumed run) sees either the old complete
// file or the new complete file, never a torn one.
#pragma once

#include <string>

namespace calculon {

// Writes `contents` to `path` atomically (unique temp + fsync + rename).
// Throws ConfigError on any failure; on failure the destination is
// untouched and the temporary is removed.
void WriteFileAtomic(const std::string& path, const std::string& contents);

// Reads a whole file into a string. Throws ConfigError if unreadable.
[[nodiscard]] std::string ReadFileToString(const std::string& path);

}  // namespace calculon
