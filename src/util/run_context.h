// Resilient sweep execution: the shared run-lifecycle state that every
// long sweep (execution search, system search, study runner, model
// self-audit) threads through its workers.
//
// A RunContext carries three cooperative stop signals —
//   * an explicit cancel token (user request / SIGINT),
//   * an optional wall-clock deadline,
//   * a failure budget (stop after too many per-item hard failures)
// — plus the structured failure log that turns a stray exception inside a
// multi-hour sweep from "the whole run is lost" into one FailureRecord in
// the result's failure-summary section. Workers poll ShouldStop() between
// items: in-flight items finish, no new items start.
//
// All members are safe to use concurrently from sweep workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace calculon {

// Why a run stopped before processing its whole range.
enum class StopReason {
  kNone = 0,       // ran to completion (or still running)
  kCancelled,      // Cancel() — user request or SIGINT
  kDeadline,       // wall-clock deadline expired
  kFailureBudget,  // too many per-item hard failures
};

[[nodiscard]] const char* ToString(StopReason reason);

// One isolated per-item hard failure: an exception thrown by an evaluation
// or a Result hard-error (kBadConfig), captured instead of killing the
// sweep.
// JSON serialization lives in the runner layer (runner/run_status_json.h)
// so util stays at the bottom of the dependency DAG.
struct FailureRecord {
  std::uint64_t item = 0;    // flat item index within the sweep
  std::string fingerprint;   // configuration coordinates, when known
  std::string reason;        // exception what() / Result detail
  unsigned worker = 0;       // claiming pool participant (0 = caller)
  // Flight-recorder post-mortem file for a quarantined supervised worker
  // (see docs/observability.md); empty when none was captured.
  std::string flight_path;
};

// The failure-summary section attached to sweep results. `complete` means
// the whole range was processed; `failures` may still be non-zero (faulted
// items were skipped), which marks the result as degraded.
struct RunStatus {
  bool complete = true;
  StopReason stop_reason = StopReason::kNone;
  std::uint64_t items_completed = 0;
  std::uint64_t failures = 0;
  std::vector<FailureRecord> failure_samples;  // first N, capped

  // Wall-clock accounting, filled by RunContext::Snapshot(): total run
  // duration (monotonic clock) and the start/end instants (system clock,
  // Unix seconds). Observational only — model results never depend on
  // these, so resumed runs stay bit-identical on their data outputs.
  double elapsed_seconds = 0.0;
  std::int64_t start_unix_seconds = 0;
  std::int64_t end_unix_seconds = 0;

  [[nodiscard]] bool degraded() const { return !complete || failures > 0; }
  // One-line human summary, e.g. "degraded: 12 failures, stopped (deadline)".
  // Appends "in Xs" when elapsed_seconds has been recorded.
  [[nodiscard]] std::string Summary() const;
};

class RunContext {
 public:
  // Construction marks the run's start time (monotonic + system clocks).
  RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // --- Configuration (set before the sweep starts) ---

  // Stop the run once this many wall-clock seconds have elapsed from now.
  void SetDeadline(double seconds);
  // Stop the run after `budget` recorded failures; 0 means unlimited.
  void set_failure_budget(std::uint64_t budget) { failure_budget_ = budget; }
  // Cap on retained FailureRecords (the count is always exact).
  void set_max_failure_samples(std::size_t cap) { max_samples_ = cap; }
  // Also observe the process-wide SIGINT flag (see InstallSigintHandler).
  void WatchSignals(bool watch) { watch_signals_ = watch; }

  // --- Cooperative stop protocol ---

  // Requests a stop: workers finish their in-flight item and claim no more.
  // Idempotent; the first reason wins.
  void Cancel(StopReason reason = StopReason::kCancelled);

  // Polled by workers between items. Also promotes an expired deadline or a
  // pending SIGINT into a cancellation, so the caller only ever checks this.
  [[nodiscard]] bool ShouldStop();

  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  [[nodiscard]] StopReason stop_reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

  // --- Progress & failure accounting ---

  void RecordCompleted(std::uint64_t n = 1) {
    completed_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t items_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  // Captures one isolated hard failure. Trips the failure budget (and
  // cancels the run) when the budget is exhausted.
  void RecordFailure(std::uint64_t item, std::string fingerprint,
                     std::string reason, unsigned worker = 0)
      CALC_EXCLUDES(mutex_);
  // Full-record variant, preserving extra evidence (flight_path) captured
  // by the dist supervisor.
  void RecordFailure(FailureRecord record) CALC_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  // Snapshot of the run's failure-summary section; callable mid-run
  // (checkpointing) or after the sweep returns.
  [[nodiscard]] RunStatus Snapshot() const CALC_EXCLUDES(mutex_);

  // --- Process-wide SIGINT flag ---
  //
  // The handler only sets a lock-free flag (async-signal-safe); contexts
  // configured with WatchSignals(true) promote it into a cancellation the
  // next time a worker polls ShouldStop(). A second SIGINT restores the
  // default disposition, so a stuck run can still be killed interactively.
  static void InstallSigintHandler();
  [[nodiscard]] static bool SigintSeen();
  static void ClearSigintFlag();  // tests only

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int> reason_{static_cast<int>(StopReason::kNone)};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failures_{0};

  std::atomic<bool> has_deadline_{false};
  // Configuration, set before the sweep starts and read-only while workers
  // run (the "set before" contract in the section comment above); the
  // deadline is published by the has_deadline_ release store.
  std::chrono::steady_clock::time_point
      deadline_{};  // lint-ok(unannotated-shared): published via has_deadline_
  std::chrono::steady_clock::time_point
      start_steady_{};  // lint-ok(unannotated-shared): set in ctor only
  std::chrono::system_clock::time_point
      start_system_{};  // lint-ok(unannotated-shared): set in ctor only

  // A failure budget of 0 means unlimited.
  std::uint64_t failure_budget_ = 0;  // lint-ok(unannotated-shared): config
  std::size_t max_samples_ = 32;      // lint-ok(unannotated-shared): config
  bool watch_signals_ = false;        // lint-ok(unannotated-shared): config

  mutable Mutex mutex_;
  std::vector<FailureRecord> samples_ CALC_GUARDED_BY(mutex_);
};

}  // namespace calculon
