#include "util/run_context.h"

#include <csignal>

#include "util/strings.h"

namespace calculon {

namespace {

// Written from the signal handler; lock-free stores only.
std::atomic<bool> g_sigint_seen{false};

extern "C" void SigintFlagHandler(int sig) {
  g_sigint_seen.store(true, std::memory_order_relaxed);
  // A second SIGINT falls through to the default disposition so a stuck
  // run can still be killed from the terminal.
  std::signal(sig, SIG_DFL);
}

}  // namespace

const char* ToString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kFailureBudget: return "failure-budget";
  }
  return "?";
}

std::string RunStatus::Summary() const {
  std::string s;
  if (!degraded()) {
    s = StrFormat("complete: %llu items, no failures",
                  static_cast<unsigned long long>(items_completed));
  } else {
    s = StrFormat("degraded: %llu failures",
                  static_cast<unsigned long long>(failures));
    if (!complete) {
      s += StrFormat(", stopped early (%s) after %llu items",
                     ToString(stop_reason),
                     static_cast<unsigned long long>(items_completed));
    }
  }
  // Statuses built without wall-clock data (hand-constructed, legacy
  // checkpoints) keep the original string.
  if (elapsed_seconds > 0.0) s += StrFormat(" in %.1fs", elapsed_seconds);
  return s;
}

RunContext::RunContext()
    : start_steady_(std::chrono::steady_clock::now()),
      start_system_(std::chrono::system_clock::now()) {}

void RunContext::SetDeadline(double seconds) {
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
  has_deadline_.store(true, std::memory_order_release);
}

void RunContext::Cancel(StopReason reason) {
  int expected = static_cast<int>(StopReason::kNone);
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_acq_rel);
  cancelled_.store(true, std::memory_order_release);
}

bool RunContext::ShouldStop() {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  if (watch_signals_ && SigintSeen()) {
    Cancel(StopReason::kCancelled);
    return true;
  }
  if (has_deadline_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    Cancel(StopReason::kDeadline);
    return true;
  }
  return false;
}

void RunContext::RecordFailure(std::uint64_t item, std::string fingerprint,
                               std::string reason, unsigned worker) {
  RecordFailure(FailureRecord{item, std::move(fingerprint), std::move(reason),
                              worker, /*flight_path=*/{}});
}

void RunContext::RecordFailure(FailureRecord record) {
  const std::uint64_t count =
      failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    MutexLock lock(mutex_);
    if (samples_.size() < max_samples_) {
      samples_.push_back(std::move(record));
    }
  }
  if (failure_budget_ > 0 && count >= failure_budget_) {
    Cancel(StopReason::kFailureBudget);
  }
}

RunStatus RunContext::Snapshot() const {
  RunStatus status;
  status.stop_reason = stop_reason();
  status.complete = status.stop_reason == StopReason::kNone && !cancelled();
  status.items_completed = items_completed();
  status.failures = failures();
  {
    MutexLock lock(mutex_);
    status.failure_samples = samples_;
  }
  // Wall-clock accounting: duration from the monotonic clock (immune to
  // system-clock steps), instants from the system clock (meaningful across
  // processes in reports).
  const auto now_steady = std::chrono::steady_clock::now();
  const auto now_system = std::chrono::system_clock::now();
  status.elapsed_seconds =
      std::chrono::duration<double>(now_steady - start_steady_).count();
  status.start_unix_seconds =
      std::chrono::duration_cast<std::chrono::seconds>(
          start_system_.time_since_epoch())
          .count();
  status.end_unix_seconds =
      std::chrono::duration_cast<std::chrono::seconds>(
          now_system.time_since_epoch())
          .count();
  return status;
}

void RunContext::InstallSigintHandler() {
  std::signal(SIGINT, SigintFlagHandler);
  std::signal(SIGTERM, SigintFlagHandler);
}

bool RunContext::SigintSeen() {
  return g_sigint_seen.load(std::memory_order_relaxed);
}

void RunContext::ClearSigintFlag() {
  g_sigint_seen.store(false, std::memory_order_relaxed);
}

}  // namespace calculon
