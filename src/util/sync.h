// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry the Clang capability attributes from
// util/thread_annotations.h.
//
// The wrappers exist because libstdc++'s std::mutex has no capability
// annotations, so Clang's -Wthread-safety cannot see a std::lock_guard
// acquire anything — every CALC_GUARDED_BY field would falsely warn. A
// calculon::Mutex is a real capability and a MutexLock a scoped
// acquisition, so both Clang and calculon-lint's thread-safety rules
// (docs/correctness.md §6) can follow the lock discipline. Zero overhead:
// each wrapper is exactly its std counterpart plus attributes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace calculon {

class CondVar;

// An annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock.
class CALC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CALC_ACQUIRE() { raw_.lock(); }
  void Unlock() CALC_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool TryLock() CALC_TRY_ACQUIRE(true) {
    return raw_.try_lock();
  }

 private:
  friend class CondVar;  // waits need the native handle
  std::mutex raw_;
};

// RAII scoped acquisition of a Mutex (the std::lock_guard shape).
class CALC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CALC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() CALC_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mutex_;
};

// Condition variable bound to MutexLock. Waits keep the annotated lock
// state unchanged (release + reacquire happens inside), which matches how
// both analyzers model a wait: the caller holds the mutex before and
// after.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  // Atomically releases `lock`'s mutex and blocks until notified; the
  // mutex is held again on return. Spurious wakeups happen: callers loop
  // on their predicate.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mutex_.raw_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with `lock`
  }

  // Wait with a deadline; false means the deadline passed before a
  // notification (the mutex is held again either way).
  [[nodiscard]] bool WaitUntil(
      MutexLock& lock, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> native(lock.mutex_.raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace calculon
