// Thread-safety annotation vocabulary (see docs/correctness.md §6).
//
// The CALC_* macros declare the lock discipline of a class in its own
// source: which mutex guards which field, which methods require or acquire
// which locks, and the partial order mutexes must be taken in. Two
// analyzers consume them:
//
//   * calculon-lint's thread-safety rules (src/staticlint/decl_model.h,
//     rule_threads.cc) parse the annotations straight out of the unpreprocessed
//     token stream, so they are enforced on every build regardless of
//     compiler;
//   * Clang expands them to its native capability-analysis attributes, so
//     -Wthread-safety (wired into the asan-ubsan CI job) double-checks the
//     same declarations with a flow-sensitive analysis.
//
// Under GCC (which has no capability analysis) the macros expand to
// nothing; they remain visible to calculon-lint either way because the
// lint engine lexes raw source, not preprocessor output.
//
// The annotated mutex types these attach to live in util/sync.h
// (calculon::Mutex / MutexLock / CondVar); std::mutex members work with
// calculon-lint but are invisible to Clang's analysis, because libstdc++
// carries no capability attributes.
#pragma once

#if defined(__clang__) && !defined(CALCULON_NO_THREAD_SAFETY_ANALYSIS)
#define CALC_TSA_ATTR_(x) __attribute__((x))
#else
#define CALC_TSA_ATTR_(x)  // no-op: still parsed by calculon-lint
#endif

// On a type: instances are capabilities (lockable). The argument is the
// capability kind shown in diagnostics, e.g. CALC_CAPABILITY("mutex").
#define CALC_CAPABILITY(x) CALC_TSA_ATTR_(capability(x))

// On a type: an RAII object that acquires a capability in its constructor
// and releases it in its destructor (util/sync.h MutexLock).
#define CALC_SCOPED_CAPABILITY CALC_TSA_ATTR_(scoped_lockable)

// On a data member: may only be read or written while holding `x`.
#define CALC_GUARDED_BY(x) CALC_TSA_ATTR_(guarded_by(x))

// On a pointer member: the pointed-to data (not the pointer itself) is
// protected by `x`.
#define CALC_PT_GUARDED_BY(x) CALC_TSA_ATTR_(pt_guarded_by(x))

// On a function: callers must hold the listed capabilities.
#define CALC_REQUIRES(...) CALC_TSA_ATTR_(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the listed capabilities (no argument
// means the object itself, e.g. Mutex::Lock).
#define CALC_ACQUIRE(...) CALC_TSA_ATTR_(acquire_capability(__VA_ARGS__))
#define CALC_RELEASE(...) CALC_TSA_ATTR_(release_capability(__VA_ARGS__))

// On a function: returns `b` when the capability was acquired.
#define CALC_TRY_ACQUIRE(...) \
  CALC_TSA_ATTR_(try_acquire_capability(__VA_ARGS__))

// On a function: callers must NOT hold the listed capabilities (the
// function acquires them itself and is not reentrant on them).
#define CALC_EXCLUDES(...) CALC_TSA_ATTR_(locks_excluded(__VA_ARGS__))

// On a mutex member: this mutex is always acquired before / after the
// listed mutexes. The lint lock-order rule builds its partial order (and
// its deadlock-cycle detection) from these edges.
#define CALC_ACQUIRED_BEFORE(...) CALC_TSA_ATTR_(acquired_before(__VA_ARGS__))
#define CALC_ACQUIRED_AFTER(...) CALC_TSA_ATTR_(acquired_after(__VA_ARGS__))

// On a function: returns a reference to the named capability.
#define CALC_RETURN_CAPABILITY(x) CALC_TSA_ATTR_(lock_returned(x))

// On a function: opt out of the analysis (init/teardown code that is
// single-threaded by construction, or deliberate lock juggling the
// analysis cannot follow). Use sparingly and justify in a comment.
#define CALC_NO_THREAD_SAFETY_ANALYSIS \
  CALC_TSA_ATTR_(no_thread_safety_analysis)
