// Minimal thread pool with a dynamic parallel-for, used by the search
// engines to spread configuration evaluation across cores (the paper:
// "a standard multi-core desktop computer is able to search the entire
// configuration space in minutes") and by calculon-lint for parallel
// per-file analysis.
//
// Lives in the util layer (the bottom of the dependency DAG) so every
// layer may use it; queue-depth telemetry is inverted through a hook the
// obs layer installs (util may not include obs).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/run_context.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace calculon {

class ThreadPool {
 public:
  // `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Runs fn(i) for every i in [0, count). Work items are claimed one at a
  // time from a shared counter (items are coarse-grained in the search
  // engines, so contention is negligible). Blocks until all are done; also
  // executes work on the calling thread. Exceptions from `fn` propagate to
  // the caller: the first exception stored wins, the remaining unclaimed
  // range is abandoned, and in-flight items finish before the call returns.
  // `fn` must be safe to call concurrently from multiple threads.
  void ParallelFor(std::uint64_t count,
                   const std::function<void(std::uint64_t)>& fn)
      CALC_EXCLUDES(mutex_);

  // Cancellation-aware variant (ctx == nullptr behaves exactly like the
  // plain overload). Participants poll `ctx->ShouldStop()` between items:
  // after a cancel / expired deadline / exhausted failure budget, in-flight
  // items finish but no new items start. Exceptions escaping `fn` are
  // recorded on `ctx` as FailureRecords (fault isolation) instead of
  // propagating, so a faulted run leaves the pool fully reusable; each item
  // that returns normally bumps `ctx`'s completed-item count.
  void ParallelFor(std::uint64_t count, RunContext* ctx,
                   const std::function<void(std::uint64_t)>& fn)
      CALC_EXCLUDES(mutex_);

  // Participant index of the calling thread inside the ParallelFor it is
  // currently draining: 0 for the caller thread, 1..N for pool workers.
  // Used to attribute FailureRecords to workers.
  [[nodiscard]] static unsigned CurrentWorkerId();

  // Telemetry inversion: util may not depend on the obs layer, so the obs
  // layer installs the queue-depth publisher here when tracing or metrics
  // are enabled (obs::InstallThreadPoolTelemetry). The hook must be safe
  // to call from any pool thread; installation is idempotent.
  using QueueDepthHook = void (*)(std::size_t depth);
  static void SetQueueDepthHook(QueueDepthHook hook);

 private:
  void WorkerLoop() CALC_EXCLUDES(mutex_);
  static void PublishQueueDepth(std::size_t depth);

  // Filled in the constructor, joined in the destructor, immutable between.
  std::vector<std::thread> workers_;  // lint-ok(unannotated-shared): ctor/dtor
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ CALC_GUARDED_BY(mutex_);
  bool stop_ CALC_GUARDED_BY(mutex_) = false;
};

}  // namespace calculon
