// ASCII table and CSV emitters for the benchmark harness reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace calculon {

// Simple column-aligned ASCII table.
//
//   Table t({"model", "time", "mem"});
//   t.AddRow({"GPT3-175B", "16.7 s", "17.4 GiB"});
//   std::cout << t.ToString();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Inserts a horizontal rule before the next added row.
  void AddRule();

  [[nodiscard]] std::string ToString() const;
  [[nodiscard]] std::string ToCsv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace calculon
