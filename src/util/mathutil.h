// Small integer-math helpers used when enumerating partitionings.
#pragma once

#include <cstdint>
#include <vector>

namespace calculon {

// Ceiling division for non-negative integers.
[[nodiscard]] constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

[[nodiscard]] constexpr bool IsPowerOfTwo(std::int64_t v) {
  return v > 0 && (v & (v - 1)) == 0;
}

// All positive divisors of n, ascending. n must be >= 1.
[[nodiscard]] std::vector<std::int64_t> Divisors(std::int64_t n);

// All ordered triples (t, p, d) with t*p*d == n.
struct Triple {
  std::int64_t t;
  std::int64_t p;
  std::int64_t d;
};
[[nodiscard]] std::vector<Triple> FactorTriples(std::int64_t n);

// Smallest divisor of n that is >= lo (n if none smaller fits).
[[nodiscard]] std::int64_t NextDivisor(std::int64_t n, std::int64_t lo);

}  // namespace calculon
