// Small integer-math helpers used when enumerating partitionings.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace calculon {

// Ceiling division for non-negative integers.
[[nodiscard]] constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  CALC_DCHECK(a >= 0 && b > 0, "CeilDiv(%lld, %lld)",
              static_cast<long long>(a), static_cast<long long>(b));
  return (a + b - 1) / b;
}

[[nodiscard]] constexpr bool IsPowerOfTwo(std::int64_t v) {
  return v > 0 && (v & (v - 1)) == 0;
}

// All positive divisors of n, ascending. n must be >= 1.
[[nodiscard]] std::vector<std::int64_t> Divisors(std::int64_t n);

// All ordered triples (t, p, d) with t*p*d == n.
struct Triple {
  std::int64_t t;
  std::int64_t p;
  std::int64_t d;
};
[[nodiscard]] std::vector<Triple> FactorTriples(std::int64_t n);

// Smallest divisor of n that is >= lo (n if none smaller fits).
[[nodiscard]] std::int64_t NextDivisor(std::int64_t n, std::int64_t lo);

// Overflow-checked multiply: returns false (and leaves *out unspecified)
// when a*b does not fit in int64. Used by the search engines when deriving
// partition products from user-controlled counts.
[[nodiscard]] bool CheckedMul(std::int64_t a, std::int64_t b,
                              std::int64_t* out);

}  // namespace calculon
