// Contract-checking macros for the analytical model.
//
// The model is trusted arithmetic: a silent NaN or negative time anywhere in
// the hot path poisons every search result built on top of it. These macros
// make violations loud at the point of origin instead:
//
//   CALC_CHECK(cond, ...)        always on, including release builds; use for
//                                cheap preconditions on public entry points
//                                and for invariants whose violation means the
//                                caller has a bug (not a bad configuration).
//   CALC_DCHECK(cond, ...)       compiled out under NDEBUG; use freely on hot
//                                inner paths (per-layer, per-collective).
//   CALC_CHECK_FINITE(val)      CALC_CHECK(std::isfinite(val)) with the
//                                expression and value in the message.
//   CALC_DCHECK_FINITE(val)     debug-only variant.
//
// A failed check throws ContractViolation (a std::logic_error), carrying
// file:line, the expression, and an optional printf-style message. Bad *user
// input* — infeasible configurations, malformed specs — is not a contract
// violation: report those through Result<T> or ConfigError (util/error.h).
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/strings.h"

namespace calculon {

// Thrown when a CALC_CHECK-family contract fails. Deriving from logic_error
// (not ConfigError) keeps programmer bugs distinguishable from bad configs.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace internal {
// Out of line so the macro expansion stays small in hot functions.
[[noreturn]] void ContractFail(const char* file, int line, const char* expr,
                               const std::string& message);
}  // namespace internal

}  // namespace calculon

// __VA_OPT__ lets the message be omitted: CALC_CHECK(x > 0) and
// CALC_CHECK(x > 0, "x=%ld", x) both work, and the format string stays a
// literal for the compiler's printf-format checking.
#define CALC_CHECK(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::calculon::internal::ContractFail(                           \
          __FILE__, __LINE__, #cond,                                \
          ::std::string()                                           \
              __VA_OPT__(+ ::calculon::StrFormat(__VA_ARGS__)));    \
    }                                                               \
  } while (false)

#define CALC_CHECK_FINITE(val)                                      \
  do {                                                              \
    const double calc_check_finite_v_ = static_cast<double>(val);   \
    if (!std::isfinite(calc_check_finite_v_)) [[unlikely]] {        \
      ::calculon::internal::ContractFail(                           \
          __FILE__, __LINE__, "isfinite(" #val ")",                 \
          ::calculon::StrFormat(#val " = %g", calc_check_finite_v_)); \
    }                                                               \
  } while (false)

#ifdef NDEBUG
// Compiles to nothing but still type-checks its arguments, so debug-only
// checks cannot rot (and their operands do not become "unused" variables).
#define CALC_DCHECK(cond, ...)                                      \
  do {                                                              \
    if (false) {                                                    \
      static_cast<void>(cond);                                      \
    }                                                               \
  } while (false)
#define CALC_DCHECK_FINITE(val)                                     \
  do {                                                              \
    if (false) {                                                    \
      static_cast<void>(val);                                       \
    }                                                               \
  } while (false)
#else
#define CALC_DCHECK(cond, ...) CALC_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define CALC_DCHECK_FINITE(val) CALC_CHECK_FINITE(val)
#endif
