// Compile-time dimensional analysis for the hardware and performance model.
//
// Quantity<B, S, F> wraps a double and carries integer exponents over the
// model's three base dimensions: bytes (B), seconds (S), and FLOPs (F).
// The wrapper is zero-overhead (one double, all operations constexpr and
// inline) while the exponents make unit errors type errors:
//
//   Bytes / BytesPerSecond -> Seconds      (transfer time)
//   Flops / FlopsPerSecond -> Seconds      (compute time)
//   Bytes / Seconds        -> BytesPerSecond
//   Bytes * double         -> Bytes        (scaling by counts/fractions)
//   Seconds / Seconds      -> double       (ratios exit the type system)
//   Bytes + Seconds        -> compile error
//   Bytes < Flops          -> compile error
//
// Construction from a raw double is explicit, and `.raw()` is the only way
// back out. Policy (enforced by scripts/lint.sh and tests/compile_fail/,
// see docs/correctness.md): raw doubles enter at the JSON-parse boundary,
// exit at the report-format / JSON-serialize boundary, and everything in
// between stays typed.
#pragma once

#include <cmath>

namespace calculon {

template <int ByteExp, int SecondExp, int FlopExp>
class Quantity {
  static_assert(ByteExp != 0 || SecondExp != 0 || FlopExp != 0,
                "dimensionless quantities are plain double");

 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  // The untyped value. Escape hatch for the JSON-parse and report-format
  // boundaries only; model arithmetic must stay in the type system.
  [[nodiscard]] constexpr double raw() const { return value_; }

  // Same-dimension arithmetic.
  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  // Scaling by a dimensionless factor.
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  [[nodiscard]] constexpr Quantity operator-() const {
    return Quantity(-value_);
  }
  [[nodiscard]] constexpr Quantity operator+() const { return *this; }

  // Hidden friends: found by argument-dependent lookup only, so a mixed
  // `Bytes + Seconds` has no viable overload and fails to compile.
  [[nodiscard]] friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  [[nodiscard]] friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.value_ * s);
  }
  [[nodiscard]] friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.value_);
  }
  [[nodiscard]] friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.value_ / s);
  }

  [[nodiscard]] friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.value_ == b.value_;
  }
  [[nodiscard]] friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.value_ != b.value_;
  }
  [[nodiscard]] friend constexpr bool operator<(Quantity a, Quantity b) {
    return a.value_ < b.value_;
  }
  [[nodiscard]] friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.value_ <= b.value_;
  }
  [[nodiscard]] friend constexpr bool operator>(Quantity a, Quantity b) {
    return a.value_ > b.value_;
  }
  [[nodiscard]] friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.value_ >= b.value_;
  }

 private:
  double value_ = 0.0;
};

namespace quantity_detail {

// Maps a dimension triple to its result type. The all-zero (dimensionless)
// case collapses to plain double, so same-dimension ratios leave the type
// system without an explicit escape hatch.
template <int B, int S, int F>
struct ResultOf {
  [[nodiscard]] static constexpr Quantity<B, S, F> Make(double v) {
    return Quantity<B, S, F>(v);
  }
};

template <>
struct ResultOf<0, 0, 0> {
  static constexpr double Make(double v) { return v; }
};

}  // namespace quantity_detail

// Dimension algebra: multiplication adds exponents, division subtracts.
template <int B1, int S1, int F1, int B2, int S2, int F2>
[[nodiscard]] constexpr auto operator*(Quantity<B1, S1, F1> a,
                                       Quantity<B2, S2, F2> b) {
  return quantity_detail::ResultOf<B1 + B2, S1 + S2, F1 + F2>::Make(a.raw() *
                                                                    b.raw());
}

template <int B1, int S1, int F1, int B2, int S2, int F2>
[[nodiscard]] constexpr auto operator/(Quantity<B1, S1, F1> a,
                                       Quantity<B2, S2, F2> b) {
  return quantity_detail::ResultOf<B1 - B2, S1 - S2, F1 - F2>::Make(a.raw() /
                                                                    b.raw());
}

// double / quantity inverts the dimension (e.g. samples / Seconds -> a rate).
template <int B, int S, int F>
[[nodiscard]] constexpr Quantity<-B, -S, -F> operator/(double s,
                                                       Quantity<B, S, F> q) {
  return Quantity<-B, -S, -F>(s / q.raw());
}

template <int B, int S, int F>
[[nodiscard]] inline bool IsFinite(Quantity<B, S, F> q) {
  return std::isfinite(q.raw());
}

template <int B, int S, int F>
[[nodiscard]] inline bool IsNan(Quantity<B, S, F> q) {
  return std::isnan(q.raw());
}

// The model's working set of dimensions.
using Bytes = Quantity<1, 0, 0>;
using Seconds = Quantity<0, 1, 0>;
using Flops = Quantity<0, 0, 1>;
using BytesPerSecond = Quantity<1, -1, 0>;
using FlopsPerSecond = Quantity<0, -1, 1>;
// Event rates whose "event" is a dimensionless count (samples/s, tokens/s).
using PerSecond = Quantity<0, -1, 0>;

// Factories. IEC (binary) multiples for byte capacities, SI (decimal)
// multiples for rates, matching the constants in util/units.h.
[[nodiscard]] constexpr Bytes KiB(double n) { return Bytes(n * 1024.0); }
[[nodiscard]] constexpr Bytes MiB(double n) { return Bytes(n * 1048576.0); }
[[nodiscard]] constexpr Bytes GiB(double n) { return Bytes(n * 1073741824.0); }
[[nodiscard]] constexpr Bytes TiB(double n) {
  return Bytes(n * 1099511627776.0);
}
[[nodiscard]] constexpr Bytes MB(double n) { return Bytes(n * 1e6); }
[[nodiscard]] constexpr Bytes GB(double n) { return Bytes(n * 1e9); }
[[nodiscard]] constexpr Bytes TB(double n) { return Bytes(n * 1e12); }

[[nodiscard]] constexpr Seconds Milliseconds(double n) {
  return Seconds(n * 1e-3);
}
[[nodiscard]] constexpr Seconds Microseconds(double n) {
  return Seconds(n * 1e-6);
}
[[nodiscard]] constexpr Seconds Nanoseconds(double n) {
  return Seconds(n * 1e-9);
}

[[nodiscard]] constexpr BytesPerSecond MBps(double n) {
  return BytesPerSecond(n * 1e6);
}
[[nodiscard]] constexpr BytesPerSecond GBps(double n) {
  return BytesPerSecond(n * 1e9);
}
[[nodiscard]] constexpr BytesPerSecond TBps(double n) {
  return BytesPerSecond(n * 1e12);
}

// Rates are written FLOPS (per second), counts GFlop/TFlop.
[[nodiscard]] constexpr FlopsPerSecond GFLOPS(double n) {
  return FlopsPerSecond(n * 1e9);
}
[[nodiscard]] constexpr FlopsPerSecond TFLOPS(double n) {
  return FlopsPerSecond(n * 1e12);
}
[[nodiscard]] constexpr Flops GFlop(double n) { return Flops(n * 1e9); }
[[nodiscard]] constexpr Flops TFlop(double n) { return Flops(n * 1e12); }

}  // namespace calculon
