#include "util/threadpool.h"

#include <algorithm>
#include <exception>
#include <memory>

namespace calculon {
namespace {

// Participant index of the ParallelFor the current thread is draining
// (0 = caller, 1..N = pool workers); 0 outside any drain.
thread_local unsigned tls_worker_id = 0;

// Installed by the obs layer (see ThreadPool::SetQueueDepthHook); null
// until tracing or metrics are enabled.
std::atomic<ThreadPool::QueueDepthHook> queue_depth_hook{nullptr};

// Shared state of one ParallelFor call. Owned jointly by the caller and the
// queued helper tasks (helpers can outlive the call's scope on the queue if
// the caller finishes draining first, so the state is reference-counted).
struct ParallelForJob {
  ParallelForJob(std::uint64_t count_, RunContext* ctx_)
      : count(count_), ctx(ctx_) {}

  const std::uint64_t count;
  RunContext* const ctx;  // may be null: plain (fail-fast) mode
  std::atomic<std::uint64_t> next{0};  // next unclaimed index

  Mutex mutex;
  CondVar done_cv;  // signaled when pending reaches zero
  std::uint64_t pending CALC_GUARDED_BY(mutex) = 0;  // still draining
  std::exception_ptr error CALC_GUARDED_BY(mutex);  // first exception from fn

  // Claims indices until the range is exhausted or the context asks for a
  // stop. Without a context, an exception claims away the whole remaining
  // range so every participant stops quickly and the first-stored exception
  // wins deterministically per participant. With a context, exceptions are
  // isolated into FailureRecords and draining continues (unless the failure
  // budget trips the context's cancel token).
  void Drain(const std::function<void(std::uint64_t)>& fn, unsigned worker)
      CALC_EXCLUDES(mutex) {
    const unsigned prev_worker = tls_worker_id;
    tls_worker_id = worker;
    while (true) {
      if (ctx != nullptr && ctx->ShouldStop()) break;
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        fn(i);
        if (ctx != nullptr) ctx->RecordCompleted();
      } catch (const std::exception& e) {
        if (ctx != nullptr) {
          ctx->RecordFailure(i, /*fingerprint=*/{}, e.what(), worker);
        } else {
          StoreError();
        }
      } catch (...) {
        if (ctx != nullptr) {
          ctx->RecordFailure(i, /*fingerprint=*/{}, "unknown exception",
                             worker);
        } else {
          StoreError();
        }
      }
    }
    tls_worker_id = prev_worker;
    MutexLock lock(mutex);
    if (--pending == 0) done_cv.NotifyAll();
  }

 private:
  void StoreError() CALC_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (!error) error = std::current_exception();
    next.store(count, std::memory_order_relaxed);
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  // The calling thread participates in ParallelFor, so spawn one fewer.
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::CurrentWorkerId() { return tls_worker_id; }

void ThreadPool::SetQueueDepthHook(QueueDepthHook hook) {
  queue_depth_hook.store(hook, std::memory_order_release);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    std::size_t depth = 0;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.Wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      depth = tasks_.size();
    }
    PublishQueueDepth(depth);
    task();
  }
}

// Queue-depth telemetry, sampled at push/pop so the installed publisher can
// show the burst of helper tasks per ParallelFor. Called outside the pool
// mutex; a no-op until the obs layer installs its hook.
void ThreadPool::PublishQueueDepth(std::size_t depth) {
  QueueDepthHook hook = queue_depth_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(depth);
}

void ThreadPool::ParallelFor(std::uint64_t count,
                             const std::function<void(std::uint64_t)>& fn) {
  ParallelFor(count, nullptr, fn);
}

void ThreadPool::ParallelFor(std::uint64_t count, RunContext* ctx,
                             const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  auto job = std::make_shared<ParallelForJob>(count, ctx);

  // Helper tasks capture `fn` and the job state by value so a task sitting
  // on the queue stays self-contained: even if it is picked up after the
  // caller has already drained the whole range, it finds count exhausted and
  // only decrements pending. Spawn at most one helper per claimable item.
  const std::uint64_t helpers =
      std::min<std::uint64_t>(workers_.size(), count);
  {
    // Written before the helper tasks are published to the queue, but the
    // queue push itself is the synchronization point — take the job mutex so
    // the write is unambiguously ordered (and visible to the analyzers).
    MutexLock lock(job->mutex);
    job->pending = helpers + 1;
  }
  if (helpers > 0) {
    std::function<void(std::uint64_t)> fn_copy = fn;
    std::size_t depth = 0;
    {
      MutexLock lock(mutex_);
      for (std::uint64_t i = 0; i < helpers; ++i) {
        const unsigned worker = static_cast<unsigned>(i) + 1;
        tasks_.push([job, fn_copy, worker] { job->Drain(fn_copy, worker); });
      }
      depth = tasks_.size();
    }
    PublishQueueDepth(depth);
    cv_.NotifyAll();
  }

  job->Drain(fn, /*worker=*/0);  // the caller participates

  std::exception_ptr error;
  {
    MutexLock lock(job->mutex);
    while (job->pending != 0) job->done_cv.Wait(lock);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace calculon
