#include "search/pricing.h"

#include <cmath>

#include "hw/presets.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/units.h"

namespace calculon {
namespace {

double HbmPrice(double gib) {
  if (gib == 20.0) return 2'250.0;
  if (gib == 40.0) return 5'000.0;
  if (gib == 80.0) return 10'000.0;
  if (gib == 120.0) return 20'000.0;
  throw ConfigError(StrFormat("no HBM3 price for %g GiB", gib));
}

double DdrPrice(double gib) {
  if (gib == 0.0) return 0.0;
  if (gib == 256.0) return 2'500.0;
  if (gib == 512.0) return 10'000.0;
  if (gib == 1024.0) return 20'000.0;
  throw ConfigError(StrFormat("no DDR5 price for %g GiB", gib));
}

constexpr double kGpuBasePrice = 20'000.0;

}  // namespace

double SystemDesign::UnitPrice() const {
  return kGpuBasePrice + HbmPrice(hbm_gib) + DdrPrice(ddr_gib);
}

std::int64_t SystemDesign::MaxGpus(double budget) const {
  const auto raw = static_cast<std::int64_t>(budget / UnitPrice());
  return raw - raw % 8;
}

System SystemDesign::Build(std::int64_t num_procs) const {
  presets::SystemOptions o;
  o.num_procs = num_procs;
  o.hbm_capacity = GiB(hbm_gib);
  if (ddr_gib > 0.0) {
    o.offload_capacity = GiB(ddr_gib);
    o.offload_bandwidth = GBps(100);
  }
  return presets::H100(o);
}

std::string SystemDesign::Label() const {
  if (ddr_gib >= 1024.0) {
    return StrFormat("%gG+%gT", hbm_gib, ddr_gib / 1024.0);
  }
  if (ddr_gib > 0.0) return StrFormat("%gG+%gG", hbm_gib, ddr_gib);
  return StrFormat("%gG", hbm_gib);
}

std::vector<SystemDesign> Table3Designs() {
  std::vector<SystemDesign> designs;
  for (double ddr : {0.0, 256.0, 512.0, 1024.0}) {
    for (double hbm : {20.0, 40.0, 80.0, 120.0}) {
      designs.push_back({hbm, ddr});
    }
  }
  return designs;
}

}  // namespace calculon
