// Pareto-front extraction over execution strategies.
//
// Section 4.2 points out that with all optimizations enabled one can pick
// a configuration that minimizes time OR memory; more generally the search
// space trades batch time against tier-1 memory and offload resources.
// This module maintains the set of non-dominated strategies.
#pragma once

#include <cstddef>
#include <vector>

#include "search/exec_search.h"

namespace calculon {

// The objectives (all minimized).
struct ParetoPoint {
  Seconds batch_time;
  Bytes tier1_bytes;
  Bytes tier2_bytes;
};

[[nodiscard]] ParetoPoint MakeParetoPoint(const Stats& stats);

// a dominates b: no objective worse, at least one strictly better.
[[nodiscard]] bool Dominates(const ParetoPoint& a, const ParetoPoint& b);

// Incrementally maintained non-dominated set.
class ParetoFront {
 public:
  // Inserts if non-dominated; evicts entries the newcomer dominates.
  // Returns true when the entry was added.
  bool Insert(SearchEntry entry);

  // Merges another front (e.g. a worker-local one).
  void Merge(ParetoFront other);

  // Entries sorted by ascending batch time.
  [[nodiscard]] std::vector<SearchEntry> Sorted() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  std::vector<SearchEntry> entries_;
};

// Convenience: the front of an arbitrary strategy list.
[[nodiscard]] std::vector<SearchEntry> ExtractParetoFront(
    std::vector<SearchEntry> entries);

}  // namespace calculon
