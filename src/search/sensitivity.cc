#include "search/sensitivity.h"

#include <cmath>

#include "obs/trace.h"
#include "util/error.h"

namespace calculon {
namespace {

// Rebuilds a component with one JSON field scaled — keeps this module
// independent of the components' private internals.
json::Value Scaled(const json::Value& v, const char* field, double factor) {
  json::Value copy = v;
  copy[field] = copy.at(field).AsDouble() * factor;
  return copy;
}

}  // namespace

const char* ToString(Resource r) {
  switch (r) {
    case Resource::kMatrixFlops: return "matrix flop/s";
    case Resource::kVectorFlops: return "vector flop/s";
    case Resource::kMem1Bandwidth: return "HBM bandwidth";
    case Resource::kMem1Capacity: return "HBM capacity";
    case Resource::kNetworkBandwidth: return "fast-net bandwidth";
    case Resource::kFabricBandwidth: return "fabric bandwidth";
    case Resource::kMem2Bandwidth: return "offload bandwidth";
  }
  return "?";
}

System ScaleResource(const System& sys, Resource resource, double factor) {
  if (factor <= 0.0) throw ConfigError("scale factor must be > 0");
  Processor proc = sys.proc();
  std::vector<Network> nets = sys.networks();
  switch (resource) {
    case Resource::kMatrixFlops:
      proc.matrix =
          ComputeUnit::FromJson(Scaled(proc.matrix.ToJson(), "flops",
                                       factor));
      break;
    case Resource::kVectorFlops:
      proc.vector =
          ComputeUnit::FromJson(Scaled(proc.vector.ToJson(), "flops",
                                       factor));
      break;
    case Resource::kMem1Bandwidth:
      proc.mem1 =
          Memory::FromJson(Scaled(proc.mem1.ToJson(), "bandwidth", factor));
      break;
    case Resource::kMem1Capacity:
      proc.mem1 =
          Memory::FromJson(Scaled(proc.mem1.ToJson(), "capacity", factor));
      break;
    case Resource::kNetworkBandwidth:
      nets.front() = Network::FromJson(
          Scaled(nets.front().ToJson(), "bandwidth", factor));
      break;
    case Resource::kFabricBandwidth:
      nets.back() = Network::FromJson(
          Scaled(nets.back().ToJson(), "bandwidth", factor));
      break;
    case Resource::kMem2Bandwidth:
      if (!proc.mem2.present()) {
        throw ConfigError("system has no tier-2 memory to scale");
      }
      proc.mem2 =
          Memory::FromJson(Scaled(proc.mem2.ToJson(), "bandwidth", factor));
      break;
  }
  return System(sys.name(), sys.num_procs(), std::move(proc),
                std::move(nets));
}

Result<std::vector<SensitivityEntry>> AnalyzeSensitivity(
    const Application& app, const Execution& exec, const System& sys,
    double step, RunContext* ctx) {
  using R = Result<std::vector<SensitivityEntry>>;
  CALC_TRACE_SPAN("search", "sensitivity");
  if (step <= 0.0) return R(Infeasible::kBadConfig, "step must be > 0");
  const auto baseline = CalculatePerformance(app, exec, sys);
  if (!baseline.ok()) return R(baseline.reason(), baseline.detail());
  const PerSecond base_rate = baseline.value().sample_rate;

  const Resource all[] = {
      Resource::kMatrixFlops,   Resource::kVectorFlops,
      Resource::kMem1Bandwidth, Resource::kMem1Capacity,
      Resource::kNetworkBandwidth, Resource::kFabricBandwidth,
      Resource::kMem2Bandwidth};
  std::vector<SensitivityEntry> entries;
  for (Resource resource : all) {
    if (ctx != nullptr && ctx->ShouldStop()) break;
    SensitivityEntry entry;
    entry.resource = resource;
    if (resource == Resource::kMem2Bandwidth && !sys.proc().mem2.present()) {
      entry.applicable = false;
      entries.push_back(entry);
      continue;
    }
    const double up_factor = 1.0 + step;
    const auto up = CalculatePerformance(
        app, exec, ScaleResource(sys, resource, up_factor));
    const auto down = CalculatePerformance(
        app, exec, ScaleResource(sys, resource, 1.0 / up_factor));
    // Explicit error handling: an infeasible perturbation reports rate 0
    // instead of risking a value()-on-error throw inside the sweep.
    entry.rate_up = up.ok() ? up.value().sample_rate : PerSecond(0.0);
    entry.rate_down =
        down.value_or(Stats{}).sample_rate;  // Stats{} rates are 0.0
    const double dlog = std::log(up_factor);
    if (up.ok() && down.ok()) {
      entry.elasticity =
          // unit-ok: elasticity is d(log rate)/d(log knob), dimensionless
          (std::log(entry.rate_up.raw()) - std::log(entry.rate_down.raw())) /
          (2.0 * dlog);
    } else if (up.ok()) {
      // Shrinking the resource broke feasibility (capacity): one-sided.
      entry.elasticity =
          // unit-ok: one-sided log-space slope, dimensionless
          (std::log(entry.rate_up.raw()) - std::log(base_rate.raw())) / dlog;
    } else {
      entry.applicable = false;
    }
    entries.push_back(entry);
  }
  return R(std::move(entries));
}

}  // namespace calculon
