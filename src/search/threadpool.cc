#include "search/threadpool.h"

#include <atomic>
#include <exception>

namespace calculon {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  // The calling thread participates in ParallelFor, so spawn one fewer.
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::uint64_t count,
                             const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  auto next = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto pending = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  auto drain = [=] {
    while (true) {
      const std::uint64_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
      }
    }
    pending->fetch_sub(1, std::memory_order_acq_rel);
  };

  const std::uint64_t helpers =
      std::min<std::uint64_t>(workers_.size(), count);
  pending->store(helpers + 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t i = 0; i < helpers; ++i) tasks_.push(drain);
  }
  cv_.notify_all();
  drain();  // caller participates
  while (pending->load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (first_error->load() && *error) std::rethrow_exception(*error);
}

}  // namespace calculon
