#include "search/scaling.h"

#include <string>

#include "obs/trace.h"

namespace calculon {

std::vector<std::int64_t> SizeRange(std::int64_t start, std::int64_t stop,
                                    std::int64_t step) {
  std::vector<std::int64_t> sizes;
  for (std::int64_t n = start; n <= stop; n += step) sizes.push_back(n);
  return sizes;
}

std::vector<ScalingPoint> ScalingSweep(const Application& app,
                                       const System& base_sys,
                                       const SearchSpace& space,
                                       const ScalingOptions& options,
                                       ThreadPool& pool) {
  CALC_TRACE_SPAN("search", "scaling_sweep");
  std::vector<ScalingPoint> points;
  points.reserve(options.sizes.size());
  for (std::int64_t n : options.sizes) {
    if (options.ctx != nullptr && options.ctx->ShouldStop()) break;
    CALC_TRACE_SPAN("search", "scaling.n=" + std::to_string(n));
    const System sys = base_sys.WithNumProcs(n);
    SearchConfig config;
    config.top_k = 1;
    config.batch_size =
        options.batch_size > 0 ? options.batch_size : n;
    config.ctx = options.ctx;
    const SearchResult result =
        FindOptimalExecution(app, sys, space, config, pool);
    ScalingPoint point;
    point.num_procs = n;
    if (!result.best.empty()) {
      point.feasible = true;
      point.sample_rate = result.best.front().stats.sample_rate;
      point.best_exec = result.best.front().exec;
    }
    points.push_back(point);
  }
  return points;
}

}  // namespace calculon
