#include "search/exec_search.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/pareto.h"
#include "testing/fault_injection.h"
#include "util/mathutil.h"
#include "util/strings.h"

namespace calculon {

SearchSpace SearchSpace::MegatronBaseline() {
  SearchSpace s;
  s.recompute = {Recompute::kNone, Recompute::kFull};
  s.tp_comm = {{false, false, false}};
  s.tp_overlap = {TpOverlap::kNone};
  s.fused_activation = {false};
  s.dp_overlap = {false};
  // Optimizer sharding predates Megatron's pipeline work (Table 1, 2019)
  // and is part of the paper's Section 4 baseline memory-saving set.
  s.optimizer_sharding = {false, true};
  s.pp_rs_ag = {false};
  s.offload = {{false, false, false}};
  return s;
}

SearchSpace SearchSpace::SequenceParallel() {
  SearchSpace s = MegatronBaseline();
  s.recompute = {Recompute::kNone, Recompute::kAttnOnly, Recompute::kFull};
  s.tp_comm = {{false, false, false},
               {true, true, false},
               {true, true, true}};
  s.pp_rs_ag = {false, true};
  return s;
}

SearchSpace SearchSpace::AllOptimizations() {
  SearchSpace s;  // defaults are the full space
  s.offload = {{false, false, false}};
  return s;
}

SearchSpace SearchSpace::AllWithOffload() {
  SearchSpace s;
  s.offload = {{false, false, false}, {true, false, false},
               {false, true, false}, {false, false, true},
               {true, true, true}};
  return s;
}

namespace {

json::Value BoolsToJson(const std::vector<bool>& bools) {
  json::Array arr;
  for (bool b : bools) arr.emplace_back(b);
  return json::Value(std::move(arr));
}

std::vector<bool> BoolsFromJson(const json::Value& v) {
  std::vector<bool> out;
  for (const json::Value& b : v.AsArray()) out.push_back(b.AsBool());
  return out;
}

}  // namespace

json::Value SearchSpace::ToJson() const {
  json::Object o;
  json::Array rc;
  for (Recompute r : recompute) rc.emplace_back(std::string(ToString(r)));
  o["recompute"] = json::Value(std::move(rc));
  json::Array tpc;
  for (const TpCommVariant& v : tp_comm) {
    json::Object t;
    t["tp_rs_ag"] = v.tp_rs_ag;
    t["seq_par"] = v.seq_par;
    t["ag_redo"] = v.ag_redo;
    tpc.emplace_back(std::move(t));
  }
  o["tp_comm"] = json::Value(std::move(tpc));
  json::Array ov;
  for (TpOverlap t : tp_overlap) ov.emplace_back(std::string(ToString(t)));
  o["tp_overlap"] = json::Value(std::move(ov));
  o["fused_activation"] = BoolsToJson(fused_activation);
  o["dp_overlap"] = BoolsToJson(dp_overlap);
  o["optimizer_sharding"] = BoolsToJson(optimizer_sharding);
  o["pp_1f1b"] = BoolsToJson(pp_1f1b);
  o["pp_rs_ag"] = BoolsToJson(pp_rs_ag);
  o["sweep_interleaving"] = sweep_interleaving;
  json::Array off;
  for (const OffloadVariant& v : offload) {
    json::Object t;
    t["weights"] = v.weights;
    t["activations"] = v.activations;
    t["optimizer"] = v.optimizer;
    off.emplace_back(std::move(t));
  }
  o["offload"] = json::Value(std::move(off));
  o["min_tensor_par"] = min_tensor_par;
  o["max_tensor_par"] = max_tensor_par;
  o["min_pipeline_par"] = min_pipeline_par;
  o["max_pipeline_par"] = max_pipeline_par;
  o["min_data_par"] = min_data_par;
  o["max_data_par"] = max_data_par;
  o["max_microbatch"] = max_microbatch;
  return json::Value(std::move(o));
}

SearchSpace SearchSpace::FromJson(const json::Value& v) {
  SearchSpace s;
  s.recompute.clear();
  for (const json::Value& r : v.at("recompute").AsArray()) {
    s.recompute.push_back(RecomputeFromString(r.AsString()));
  }
  s.tp_comm.clear();
  for (const json::Value& t : v.at("tp_comm").AsArray()) {
    s.tp_comm.push_back({t.at("tp_rs_ag").AsBool(), t.at("seq_par").AsBool(),
                         t.at("ag_redo").AsBool()});
  }
  s.tp_overlap.clear();
  for (const json::Value& t : v.at("tp_overlap").AsArray()) {
    s.tp_overlap.push_back(TpOverlapFromString(t.AsString()));
  }
  s.fused_activation = BoolsFromJson(v.at("fused_activation"));
  s.dp_overlap = BoolsFromJson(v.at("dp_overlap"));
  s.optimizer_sharding = BoolsFromJson(v.at("optimizer_sharding"));
  s.pp_1f1b = BoolsFromJson(v.at("pp_1f1b"));
  s.pp_rs_ag = BoolsFromJson(v.at("pp_rs_ag"));
  s.sweep_interleaving = v.at("sweep_interleaving").AsBool();
  s.offload.clear();
  for (const json::Value& t : v.at("offload").AsArray()) {
    s.offload.push_back({t.at("weights").AsBool(),
                         t.at("activations").AsBool(),
                         t.at("optimizer").AsBool()});
  }
  s.min_tensor_par = v.at("min_tensor_par").AsInt();
  s.max_tensor_par = v.at("max_tensor_par").AsInt();
  s.min_pipeline_par = v.at("min_pipeline_par").AsInt();
  s.max_pipeline_par = v.at("max_pipeline_par").AsInt();
  s.min_data_par = v.at("min_data_par").AsInt();
  s.max_data_par = v.at("max_data_par").AsInt();
  s.max_microbatch = v.at("max_microbatch").AsInt();
  return s;
}

namespace {

// One slot per Infeasible enumerator (kNone..kBadConfig).
constexpr std::size_t kNumInfeasible =
    static_cast<std::size_t>(Infeasible::kBadConfig) + 1;
using RejectionTally = std::array<std::uint64_t, kNumInfeasible>;

struct LocalState {
  std::vector<SearchEntry> best;
  std::uint64_t evaluated = 0;
  std::uint64_t feasible = 0;
  RejectionTally rejected{};
  std::vector<PerSecond> rates;
  ParetoFront pareto;
};

// Publishes per-reason rejection tallies as metrics counters, e.g.
// "exec_search.rejected.insufficient_memory_capacity". Tallies stay in
// per-triple local arrays during the sweep (no hot atomics); this runs once
// per search.
void PublishRejections(const char* prefix, const RejectionTally& rejected) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (!metrics.enabled()) return;
  for (std::size_t i = 1; i < kNumInfeasible; ++i) {  // skip kNone
    if (rejected[i] == 0) continue;
    const std::string name =
        std::string(prefix) + ".rejected." +
        obs::MetricNameSegment(ToString(static_cast<Infeasible>(i)));
    metrics.GetCounter(name)->Increment(rejected[i]);
  }
}

}  // namespace

bool Better(const Stats& a, const Stats& b) {
  if (a.sample_rate != b.sample_rate) return a.sample_rate > b.sample_rate;
  return a.tier1.Total() < b.tier1.Total();  // deterministic tie-break
}

void InsertTopK(std::vector<SearchEntry>& best, int top_k, Execution exec,
                Stats stats) {
  if (static_cast<int>(best.size()) == top_k &&
      !Better(stats, best.back().stats)) {
    return;
  }
  SearchEntry entry{std::move(exec), std::move(stats)};
  auto pos = std::upper_bound(best.begin(), best.end(), entry,
                              [](const SearchEntry& a, const SearchEntry& b) {
                                return Better(a.stats, b.stats);
                              });
  best.insert(pos, std::move(entry));
  if (static_cast<int>(best.size()) > top_k) best.pop_back();
}

namespace {

// Compact configuration coordinates for FailureRecords: enough to replay
// the exact evaluation that faulted.
std::string ExecFingerprint(const Execution& e) {
  return StrFormat(
      "t=%lld p=%lld d=%lld mb=%lld batch=%lld il=%lld rc=%s%s%s%s%s%s%s%s",
      static_cast<long long>(e.tensor_par),
      static_cast<long long>(e.pipeline_par),
      static_cast<long long>(e.data_par),
      static_cast<long long>(e.microbatch),
      static_cast<long long>(e.batch_size),
      static_cast<long long>(e.pp_interleaving), ToString(e.recompute),
      e.tp_rs_ag ? " tp_rs_ag" : "", e.seq_par ? " seq_par" : "",
      e.fused_activation ? " fused" : "", e.dp_overlap ? " dp_ovl" : "",
      e.optimizer_sharding ? " shard" : "", e.pp_rs_ag ? " pp_rs_ag" : "",
      e.any_offload() ? " offload" : "");
}

// Evaluates one candidate with fault isolation: injected faults, exceptions
// escaping the model, and kBadConfig hard-error Results become
// FailureRecords on `ctx` instead of aborting the sweep. Only called when a
// RunContext is present.
[[nodiscard]] Result<Stats> GuardedEvaluate(const Application& app,
                                            const Execution& e,
                                            const System& sys,
                                            RunContext* ctx,
                                            std::uint64_t key) {
  auto& faults = testing::FaultInjector::Global();
  try {
    if (faults.enabled() && faults.MaybeInject(key)) {
      Result<Stats> injected(Infeasible::kBadConfig, "injected fault");
      ctx->RecordFailure(key, ExecFingerprint(e), injected.detail(),
                         ThreadPool::CurrentWorkerId());
      return injected;
    }
    Result<Stats> r = CalculatePerformance(app, e, sys);
    if (!r.ok() && r.reason() == Infeasible::kBadConfig) {
      // A structurally valid configuration produced a hard error (the
      // model's non-finite screen): a model bug, not a property of the
      // swept configuration — record it, don't hide it among infeasibles.
      ctx->RecordFailure(key, ExecFingerprint(e), r.detail(),
                         ThreadPool::CurrentWorkerId());
    }
    return r;
  } catch (const std::exception& ex) {
    ctx->RecordFailure(key, ExecFingerprint(e), ex.what(),
                       ThreadPool::CurrentWorkerId());
    return Result<Stats>(Infeasible::kBadConfig, ex.what());
  }
}

// Sweeps every candidate of one (t, p, d) triple into `local`. The single
// evaluation-order-defining loop nest, shared by the in-process ParallelFor
// and the dist worker (SweepTriple) so both make identical evaluations
// with identical fault-injection keys.
void SweepTripleInto(const Application& app, const System& sys,
                     const SearchSpace& space, const SearchConfig& config,
                     std::int64_t batch, bool has_tier2, Triple tr,
                     std::uint64_t idx, RunContext* ctx,
                     obs::Histogram* latency, LocalState& local) {
    Execution e;
    e.num_procs = sys.num_procs();
    e.tensor_par = tr.t;
    e.pipeline_par = tr.p;
    e.data_par = tr.d;
    e.batch_size = batch;

    // Contextual knob lists: degenerate degrees collapse their options.
    const bool has_tp = tr.t > 1;
    const bool has_pp = tr.p > 1;
    const bool has_dp = tr.d > 1;

    static const std::vector<SearchSpace::TpCommVariant> kNoTp = {
        {false, false, false}};
    static const std::vector<TpOverlap> kNoOverlap = {TpOverlap::kNone};
    static const std::vector<bool> kFalseOnly = {false};
    static const std::vector<bool> kTrueOnly = {true};
    static const std::vector<SearchSpace::OffloadVariant> kNoOffload = {
        {false, false, false}};

    const auto& tp_comm = has_tp ? space.tp_comm : kNoTp;
    const auto& tp_overlap = has_tp ? space.tp_overlap : kNoOverlap;
    const auto& dp_overlap = has_dp ? space.dp_overlap : kFalseOnly;
    const auto& sharding = has_dp ? space.optimizer_sharding : kFalseOnly;
    const auto& one_f_one_b = has_pp ? space.pp_1f1b : kTrueOnly;
    const auto& pp_rs_ag =
        (has_pp && has_tp) ? space.pp_rs_ag : kFalseOnly;
    const auto& offload = has_tier2 ? space.offload : kNoOffload;

    const std::int64_t bpp = CeilDiv(app.num_blocks, tr.p);
    std::vector<std::int64_t> interleavings = {1};
    if (space.sweep_interleaving && has_pp) {
      interleavings = Divisors(bpp);
    }

    std::vector<std::int64_t> microbatches;
    for (std::int64_t m : Divisors(batch / tr.d)) {
      if (m <= space.max_microbatch) microbatches.push_back(m);
    }

    // The nest runs inside a lambda so a cooperative stop can abandon the
    // triple's remaining candidates while keeping (and merging) everything
    // already evaluated — partial results survive a cancelled sweep.
    auto sweep_triple = [&] {
    for (std::int64_t m : microbatches) {
      e.microbatch = m;
      for (std::int64_t il : interleavings) {
        e.pp_interleaving = il;
        for (Recompute rc : space.recompute) {
          e.recompute = rc;
          if (ctx != nullptr && ctx->ShouldStop()) return;
          for (const auto& tpc : tp_comm) {
            e.tp_rs_ag = tpc.tp_rs_ag;
            e.seq_par = tpc.seq_par;
            e.seq_par_ag_redo = tpc.ag_redo;
            for (TpOverlap ov : tp_overlap) {
              e.tp_overlap = ov;
              for (bool fused : space.fused_activation) {
                e.fused_activation = fused;
                for (bool dpo : dp_overlap) {
                  e.dp_overlap = dpo;
                  for (bool sh : sharding) {
                    e.optimizer_sharding = sh;
                    for (bool f1b : one_f_one_b) {
                      e.pp_1f1b = f1b;
                      for (bool ppr : pp_rs_ag) {
                        e.pp_rs_ag = ppr;
                        for (const auto& off : offload) {
                          e.weight_offload = off.weights;
                          e.activation_offload = off.activations;
                          e.optimizer_offload = off.optimizer;

                          ++local.evaluated;
                          const double eval_t0 =
                              latency != nullptr ? obs::MonotonicMicros()
                                                 : 0.0;
                          // Evaluation key: deterministic per configuration
                          // regardless of thread interleaving (triple index
                          // in the high bits, per-triple counter below).
                          Result<Stats> r =
                              ctx != nullptr
                                  ? GuardedEvaluate(app, e, sys, ctx,
                                                    (idx << 32) +
                                                        local.evaluated)
                                  : CalculatePerformance(app, e, sys);
                          if (latency != nullptr) {
                            latency->Observe(obs::MonotonicMicros() -
                                             eval_t0);
                          }
                          if (!r.ok()) {
                            ++local.rejected[static_cast<std::size_t>(
                                r.reason())];
                            continue;
                          }
                          ++local.feasible;
                          if (config.keep_all_rates) {
                            local.rates.push_back(r.value().sample_rate);
                          }
                          if (config.keep_pareto) {
                            local.pareto.Insert({e, r.value()});
                          }
                          InsertTopK(local.best, config.top_k, e,
                                     std::move(r).value());
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
    };
    sweep_triple();
}

}  // namespace

std::vector<Triple> SearchTriples(const Application& app, const System& sys,
                                  const SearchSpace& space,
                                  const SearchConfig& config) {
  const std::int64_t n = sys.num_procs();
  const std::int64_t batch = config.batch_size > 0 ? config.batch_size : n;
  std::vector<Triple> triples;
  for (const Triple& tr : FactorTriples(n)) {
    if (tr.t < space.min_tensor_par || tr.t > space.max_tensor_par) continue;
    if (tr.p < space.min_pipeline_par || tr.p > space.max_pipeline_par) {
      continue;
    }
    if (tr.d < space.min_data_par || tr.d > space.max_data_par) continue;
    if (tr.t > app.attn_heads || app.attn_heads % tr.t != 0) continue;
    if (tr.p > app.num_blocks) continue;
    if (batch % tr.d != 0) continue;
    triples.push_back(tr);
  }
  return triples;
}

TripleSweep SweepTriple(const Application& app, const System& sys,
                        const SearchSpace& space, const SearchConfig& config,
                        std::uint64_t index) {
  const std::vector<Triple> triples = SearchTriples(app, sys, space, config);
  if (index >= triples.size()) {
    throw ConfigError("SweepTriple: triple index out of range");
  }
  const std::int64_t batch =
      config.batch_size > 0 ? config.batch_size : sys.num_procs();
  // A private context captures the triple's hard failures for replay onto
  // the caller's accounting; uncapped so the replayed count is exact.
  RunContext local_ctx;
  local_ctx.set_max_failure_samples(
      std::numeric_limits<std::size_t>::max());
  LocalState local;
  // Same instrumentation as the in-process sweep: inside a supervised
  // worker these land in the worker's own registry/trace and travel to the
  // supervisor as metrics_snapshot / trace_chunk frames, so the aggregated
  // counts match the in-process run exactly.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Histogram* const latency =
      metrics.enabled()
          ? metrics.GetHistogram("exec_search.eval_latency_us",
                                 obs::DefaultLatencyBoundsUs())
          : nullptr;
  const Triple tr = triples[index];
  CALC_TRACE_SPAN("search", StrFormat("triple t=%lld p=%lld d=%lld",
                                      static_cast<long long>(tr.t),
                                      static_cast<long long>(tr.p),
                                      static_cast<long long>(tr.d)));
  SweepTripleInto(app, sys, space, config, batch,
                  sys.proc().mem2.present(), tr, index,
                  &local_ctx, latency, local);
  if (metrics.enabled()) {
    metrics.GetCounter("exec_search.evaluated")->Increment(local.evaluated);
    metrics.GetCounter("exec_search.feasible")->Increment(local.feasible);
    PublishRejections("exec_search", local.rejected);
  }
  TripleSweep out;
  out.best = std::move(local.best);
  out.evaluated = local.evaluated;
  out.feasible = local.feasible;
  out.rejected.assign(local.rejected.begin(), local.rejected.end());
  out.failures = local_ctx.Snapshot().failure_samples;
  return out;
}

SearchResult FindOptimalExecution(const Application& app, const System& sys,
                                  const SearchSpace& space,
                                  const SearchConfig& config,
                                  ThreadPool& pool) {
  CALC_TRACE_SPAN("search", "exec_search");
  const std::int64_t n = sys.num_procs();
  const std::int64_t batch =
      config.batch_size > 0 ? config.batch_size : n;
  const bool has_tier2 = sys.proc().mem2.present();

  // Candidate partitionings under the structural constraints.
  const std::size_t all_triples = FactorTriples(n).size();
  const std::vector<Triple> triples =
      SearchTriples(app, sys, space, config);

  SearchResult result;
  ParetoFront pareto;
  RejectionTally rejected{};
  Mutex merge_mutex;
  RunContext* const ctx = config.ctx;

  // Instrument pointers are fetched once per search; the per-evaluation
  // path is a clock read + histogram observe, and skips even those when
  // metrics are disabled.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Histogram* const latency =
      metrics.enabled()
          ? metrics.GetHistogram("exec_search.eval_latency_us",
                                 obs::DefaultLatencyBoundsUs())
          : nullptr;

  pool.ParallelFor(triples.size(), ctx, [&](std::uint64_t idx) {
    const Triple tr = triples[idx];
    CALC_TRACE_SPAN("search",
                    StrFormat("triple t=%lld p=%lld d=%lld",
                              static_cast<long long>(tr.t),
                              static_cast<long long>(tr.p),
                              static_cast<long long>(tr.d)));
    LocalState local;
    SweepTripleInto(app, sys, space, config, batch, has_tier2, tr, idx, ctx,
                    latency, local);

    MutexLock lock(merge_mutex);
    result.evaluated += local.evaluated;
    result.feasible += local.feasible;
    for (std::size_t i = 0; i < kNumInfeasible; ++i) {
      rejected[i] += local.rejected[i];
    }
    for (SearchEntry& entry : local.best) {
      InsertTopK(result.best, config.top_k, std::move(entry.exec),
                 std::move(entry.stats));
    }
    result.all_rates.insert(result.all_rates.end(), local.rates.begin(),
                            local.rates.end());
    pareto.Merge(std::move(local.pareto));
  });

  if (metrics.enabled()) {
    metrics.GetCounter("exec_search.evaluated")->Increment(result.evaluated);
    metrics.GetCounter("exec_search.feasible")->Increment(result.feasible);
    metrics.GetCounter("exec_search.culled_triples")
        ->Increment(all_triples - triples.size());
    PublishRejections("exec_search", rejected);
  }
  CALC_TRACE_COUNTER("exec_search.evaluated", result.evaluated);

  if (config.keep_pareto) result.pareto = pareto.Sorted();
  if (ctx != nullptr) result.status = ctx->Snapshot();
  return result;
}

}  // namespace calculon
