#include "search/pareto.h"

#include <algorithm>

namespace calculon {

ParetoPoint MakeParetoPoint(const Stats& stats) {
  return {stats.batch_time, stats.tier1.Total(), stats.tier2.Total()};
}

bool Dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.batch_time <= b.batch_time &&
                        a.tier1_bytes <= b.tier1_bytes &&
                        a.tier2_bytes <= b.tier2_bytes;
  const bool strictly_better = a.batch_time < b.batch_time ||
                               a.tier1_bytes < b.tier1_bytes ||
                               a.tier2_bytes < b.tier2_bytes;
  return no_worse && strictly_better;
}

bool ParetoFront::Insert(SearchEntry entry) {
  const ParetoPoint p = MakeParetoPoint(entry.stats);
  for (const SearchEntry& existing : entries_) {
    const ParetoPoint q = MakeParetoPoint(existing.stats);
    // Reject dominated newcomers (duplicates count as dominated).
    if (Dominates(q, p) || (!Dominates(p, q) && q.batch_time == p.batch_time &&
                            q.tier1_bytes == p.tier1_bytes &&
                            q.tier2_bytes == p.tier2_bytes)) {
      return false;
    }
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const SearchEntry& existing) {
                                  return Dominates(
                                      p, MakeParetoPoint(existing.stats));
                                }),
                 entries_.end());
  entries_.push_back(std::move(entry));
  return true;
}

void ParetoFront::Merge(ParetoFront other) {
  for (SearchEntry& entry : other.entries_) {
    Insert(std::move(entry));
  }
}

std::vector<SearchEntry> ParetoFront::Sorted() const {
  std::vector<SearchEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const SearchEntry& a, const SearchEntry& b) {
              return a.stats.batch_time < b.stats.batch_time;
            });
  return sorted;
}

std::vector<SearchEntry> ExtractParetoFront(
    std::vector<SearchEntry> entries) {
  ParetoFront front;
  for (SearchEntry& entry : entries) {
    front.Insert(std::move(entry));
  }
  return front.Sorted();
}

}  // namespace calculon
