// Minimal thread pool with a dynamic parallel-for, used by the search
// engines to spread configuration evaluation across cores (the paper:
// "a standard multi-core desktop computer is able to search the entire
// configuration space in minutes").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace calculon {

class ThreadPool {
 public:
  // `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Runs fn(i) for every i in [0, count). Work items are claimed one at a
  // time from a shared counter (items are coarse-grained in the search
  // engines, so contention is negligible). Blocks until all are done; also
  // executes work on the calling thread. Exceptions from `fn` propagate to
  // the caller: the first exception stored wins, the remaining unclaimed
  // range is abandoned, and in-flight items finish before the call returns.
  // `fn` must be safe to call concurrently from multiple threads.
  void ParallelFor(std::uint64_t count,
                   const std::function<void(std::uint64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace calculon
