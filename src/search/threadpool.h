// Minimal thread pool with a dynamic parallel-for, used by the search
// engines to spread configuration evaluation across cores (the paper:
// "a standard multi-core desktop computer is able to search the entire
// configuration space in minutes").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/run_context.h"

namespace calculon {

class ThreadPool {
 public:
  // `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Runs fn(i) for every i in [0, count). Work items are claimed one at a
  // time from a shared counter (items are coarse-grained in the search
  // engines, so contention is negligible). Blocks until all are done; also
  // executes work on the calling thread. Exceptions from `fn` propagate to
  // the caller: the first exception stored wins, the remaining unclaimed
  // range is abandoned, and in-flight items finish before the call returns.
  // `fn` must be safe to call concurrently from multiple threads.
  void ParallelFor(std::uint64_t count,
                   const std::function<void(std::uint64_t)>& fn);

  // Cancellation-aware variant (ctx == nullptr behaves exactly like the
  // plain overload). Participants poll `ctx->ShouldStop()` between items:
  // after a cancel / expired deadline / exhausted failure budget, in-flight
  // items finish but no new items start. Exceptions escaping `fn` are
  // recorded on `ctx` as FailureRecords (fault isolation) instead of
  // propagating, so a faulted run leaves the pool fully reusable; each item
  // that returns normally bumps `ctx`'s completed-item count.
  void ParallelFor(std::uint64_t count, RunContext* ctx,
                   const std::function<void(std::uint64_t)>& fn);

  // Participant index of the calling thread inside the ParallelFor it is
  // currently draining: 0 for the caller thread, 1..N for pool workers.
  // Used to attribute FailureRecords to workers.
  [[nodiscard]] static unsigned CurrentWorkerId();

 private:
  void WorkerLoop();
  static void PublishQueueDepth(std::size_t depth);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace calculon
