// System right-sizing (Section 5.2): "Right-sizing the system in light of
// such phenomena could mean the difference between deciding to use or
// acquire a relatively smaller system."
//
// Given a model, a system template and candidate sizes, this classifies
// each size by its relative efficiency (best sample rate per GPU against
// the sweep's envelope), flags the cliff and dead sizes, and recommends
// the smallest size meeting a target efficiency and a minimum absolute
// throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "search/scaling.h"

namespace calculon {

struct RightSizeOptions {
  std::vector<std::int64_t> sizes;   // candidate processor counts
  std::int64_t batch_size = 0;       // 0: num_procs samples per size
  double target_efficiency = 0.9;  // of the best per-GPU rate observed
  PerSecond min_sample_rate;       // absolute throughput floor
  // Optional resilience context, forwarded to the underlying scaling sweep.
  RunContext* ctx = nullptr;
};

struct SizeAssessment {
  std::int64_t num_procs = 0;
  PerSecond sample_rate;
  double efficiency = 0.0;  // per-GPU rate / best per-GPU rate
  bool feasible = false;
  Execution best_exec;
};

struct RightSizeReport {
  std::vector<SizeAssessment> assessments;  // in input-size order
  PerSecond best_per_gpu_rate;
  // Smallest size meeting both thresholds; 0 when none qualifies.
  std::int64_t recommended = 0;
  std::vector<std::int64_t> dead_sizes;   // no feasible strategy at all
  std::vector<std::int64_t> cliff_sizes;  // feasible but below target
};

[[nodiscard]] RightSizeReport RightSize(const Application& app,
                                        const System& base_sys,
                                        const SearchSpace& space,
                                        const RightSizeOptions& options,
                                        ThreadPool& pool);

}  // namespace calculon
