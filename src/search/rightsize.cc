#include "search/rightsize.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/error.h"

namespace calculon {

RightSizeReport RightSize(const Application& app, const System& base_sys,
                          const SearchSpace& space,
                          const RightSizeOptions& options, ThreadPool& pool) {
  CALC_TRACE_SPAN("search", "rightsize");
  if (options.sizes.empty()) {
    throw ConfigError("RightSize: no candidate sizes");
  }
  ScalingOptions scaling;
  scaling.sizes = options.sizes;
  scaling.batch_size = options.batch_size;
  scaling.ctx = options.ctx;
  const auto points = ScalingSweep(app, base_sys, space, scaling, pool);

  RightSizeReport report;
  for (const ScalingPoint& pt : points) {
    if (pt.feasible) {
      report.best_per_gpu_rate = std::max(
          report.best_per_gpu_rate,
          pt.sample_rate / static_cast<double>(pt.num_procs));
    }
  }
  for (const ScalingPoint& pt : points) {
    SizeAssessment a;
    a.num_procs = pt.num_procs;
    a.feasible = pt.feasible;
    a.sample_rate = pt.sample_rate;
    a.best_exec = pt.best_exec;
    if (pt.feasible && report.best_per_gpu_rate > PerSecond(0.0)) {
      a.efficiency = pt.sample_rate /
                     (static_cast<double>(pt.num_procs) *
                      report.best_per_gpu_rate);
    }
    if (!pt.feasible) {
      report.dead_sizes.push_back(pt.num_procs);
    } else if (a.efficiency < options.target_efficiency) {
      report.cliff_sizes.push_back(pt.num_procs);
    } else if (report.recommended == 0 &&
               a.sample_rate >= options.min_sample_rate) {
      report.recommended = pt.num_procs;
    }
    report.assessments.push_back(std::move(a));
  }
  return report;
}

}  // namespace calculon
