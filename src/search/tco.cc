#include "search/tco.h"

#include "util/error.h"

namespace calculon {

TcoResult ComputeTco(const SystemDesign& design, std::int64_t gpus,
                     const TcoParams& params) {
  if (gpus < 0) throw ConfigError("ComputeTco: negative GPU count");
  TcoResult result;
  result.capex = design.UnitPrice() * static_cast<double>(gpus);
  const double watts_per_gpu =
      (params.gpu_power_w + params.host_power_w +
       params.ddr_power_w_per_gib * design.ddr_gib) *
      params.pue;
  const double hours = params.years * 365.25 * 24.0 * params.utilization;
  result.energy_kwh =
      watts_per_gpu * static_cast<double>(gpus) * hours / 1000.0;
  result.opex = result.energy_kwh * params.dollars_per_kwh;
  return result;
}

double DollarsPerMillionSamples(const TcoResult& tco, const TcoParams& params,
                                PerSecond sample_rate) {
  if (sample_rate <= PerSecond(0.0)) {
    throw ConfigError("sample rate must be > 0");
  }
  const Seconds lifetime = Seconds(
      params.years * 365.25 * 24.0 * 3600.0 * params.utilization);
  const double samples = sample_rate * lifetime;
  return tco.Total() / samples * 1e6;
}

}  // namespace calculon
