// Hardware sensitivity analysis: the codesign question behind Section 1's
// trade-off discussion — if you could improve one resource (matrix
// throughput, vector throughput, HBM bandwidth/capacity, NVLink bandwidth,
// fabric bandwidth, offload bandwidth), which one buys the most training
// throughput for a given workload and strategy?
//
// For each resource the analysis scales it by a factor and re-evaluates
// the model, reporting the elasticity d(log rate)/d(log resource) around
// the baseline: 1.0 means perfectly bound by that resource, 0.0 means
// insensitive.
#pragma once

#include <string>
#include <vector>

#include "core/perf_model.h"
#include "util/run_context.h"

namespace calculon {

enum class Resource {
  kMatrixFlops,
  kVectorFlops,
  kMem1Bandwidth,
  kMem1Capacity,
  kNetworkBandwidth,  // the fastest (innermost) tier
  kFabricBandwidth,   // the largest (outermost) tier
  kMem2Bandwidth,
};

[[nodiscard]] const char* ToString(Resource r);

// Copy of `sys` with one resource scaled by `factor` (> 0).
[[nodiscard]] System ScaleResource(const System& sys, Resource resource,
                                   double factor);

struct SensitivityEntry {
  Resource resource;
  bool applicable = true;   // e.g. mem2 on a system without a tier 2
  PerSecond rate_up;        // sample rate with the resource * (1 + step)
  PerSecond rate_down;      // sample rate with the resource / (1 + step)
  double elasticity = 0.0;  // d(log rate) / d(log resource), centered
};

// Evaluates all resources around the baseline; `step` is the relative
// perturbation (default 25%). The (app, exec) pair must be feasible on
// `sys`; scaling capacity down may make a direction infeasible, in which
// case the one-sided estimate is used. With a RunContext, cancellation is
// observed between resources and a stopped run returns the entries
// evaluated so far.
[[nodiscard]] Result<std::vector<SensitivityEntry>> AnalyzeSensitivity(
    const Application& app, const Execution& exec, const System& sys,
    double step = 0.25, RunContext* ctx = nullptr);

}  // namespace calculon
