// Total-cost-of-ownership model (Sections 6-7: "the decision to use
// offloading or not should come after analyzing total cost of ownership,
// as even small efficiency gains can accumulate during long system use").
//
// TCO = capital expenditure (the Section 7 price model) + energy over the
// deployment lifetime. Combined with a sample rate it yields cost per
// training sample, the metric that makes small efficiency deltas visible.
#pragma once

#include <cstdint>

#include "search/pricing.h"

namespace calculon {

struct TcoParams {
  double gpu_power_w = 700.0;       // accelerator board power
  double ddr_power_w_per_gib = 0.4; // secondary-memory power per GiB
  double host_power_w = 150.0;      // per-GPU share of host/NIC power
  double pue = 1.3;                 // datacenter power usage effectiveness
  double dollars_per_kwh = 0.08;
  double years = 4.0;               // deployment lifetime
  double utilization = 0.8;         // average duty cycle over the lifetime
};

struct TcoResult {
  double capex = 0.0;        // dollars: GPUs with their memory options
  double energy_kwh = 0.0;   // lifetime energy at the wall
  double opex = 0.0;         // dollars: energy cost
  [[nodiscard]] double Total() const { return capex + opex; }
};

// Lifetime cost of `gpus` processors of the given design.
[[nodiscard]] TcoResult ComputeTco(const SystemDesign& design,
                                   std::int64_t gpus,
                                   const TcoParams& params);

// Dollars per million training samples at a sustained sample rate.
[[nodiscard]] double DollarsPerMillionSamples(const TcoResult& tco,
                                              const TcoParams& params,
                                              PerSecond sample_rate);

}  // namespace calculon
