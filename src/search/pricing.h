// The paper's Section 7 cost model: H100-based system designs priced by
// their HBM3 and secondary-DDR5 options under a fixed budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/system.h"

namespace calculon {

struct SystemDesign {
  double hbm_gib = 80.0;   // HBM3 capacity per GPU (GiB)
  double ddr_gib = 0.0;    // secondary DDR5 capacity per GPU (GiB; 0 = none)

  // Per-GPU price in dollars: $20k base (GPU + infrastructure) plus the
  // HBM3 and DDR5 options at the paper's prices.
  [[nodiscard]] double UnitPrice() const;

  // Most GPUs affordable under `budget` dollars, rounded down to a whole
  // NVLink domain (multiples of 8, matching Table 3's "Max GPUs").
  [[nodiscard]] std::int64_t MaxGpus(double budget) const;

  // The H100 system this design describes, with `num_procs` GPUs. HBM3 runs
  // at 3 TB/s regardless of capacity; DDR5 at 100 GB/s per direction.
  [[nodiscard]] System Build(std::int64_t num_procs) const;

  [[nodiscard]] std::string Label() const;
};

// The 16 designs of Table 3: HBM3 {20, 40, 80, 120} GiB x DDR5 {0, 256,
// 512, 1024} GiB.
[[nodiscard]] std::vector<SystemDesign> Table3Designs();

}  // namespace calculon
