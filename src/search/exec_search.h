// Optimal-execution search engine (Section 5.1).
//
// Exhaustively enumerates execution strategies — the (t, p, d) split,
// micro-batch size, and every optimization knob of Table 1 — evaluates each
// with the analytical model, and returns the top performers. Evaluation is
// spread over a thread pool; each candidate costs microseconds, so spaces
// of millions of configurations complete in minutes on a desktop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/perf_model.h"
#include "json/json.h"
#include "util/mathutil.h"
#include "util/threadpool.h"
#include "util/run_context.h"

namespace calculon {

// Which knobs the sweep explores. Fixed aspects of the strategy (e.g. "the
// paper's Fig. 5(a) uses only the original Megatron optimizations") are
// expressed by narrowing the candidate lists.
struct SearchSpace {
  std::vector<Recompute> recompute = {Recompute::kNone, Recompute::kAttnOnly,
                                      Recompute::kFull};
  // (tp_rs_ag, seq_par, seq_par_ag_redo) variants to try.
  struct TpCommVariant {
    bool tp_rs_ag = false;
    bool seq_par = false;
    bool ag_redo = false;
  };
  std::vector<TpCommVariant> tp_comm = {{false, false, false},
                                        {true, false, false},
                                        {true, true, false},
                                        {true, true, true}};
  std::vector<TpOverlap> tp_overlap = {TpOverlap::kNone, TpOverlap::kPipe,
                                       TpOverlap::kRing};
  std::vector<bool> fused_activation = {false, true};
  std::vector<bool> dp_overlap = {false, true};
  std::vector<bool> optimizer_sharding = {false, true};
  std::vector<bool> pp_1f1b = {true};
  std::vector<bool> pp_rs_ag = {false, true};
  bool sweep_interleaving = true;  // divisors of blocks-per-stage (else 1)

  // Offload combinations (weights, activations, optimizer). The default
  // tries none and all-three; systems without a tier-2 memory silently
  // reduce to none.
  struct OffloadVariant {
    bool weights = false;
    bool activations = false;
    bool optimizer = false;
  };
  std::vector<OffloadVariant> offload = {{false, false, false},
                                         {true, true, true}};

  // Partition constraints (the studies often pin one degree).
  std::int64_t min_tensor_par = 1;
  std::int64_t max_tensor_par = 1'000'000'000;
  std::int64_t min_pipeline_par = 1;
  std::int64_t max_pipeline_par = 1'000'000'000;
  std::int64_t min_data_par = 1;
  std::int64_t max_data_par = 1'000'000'000;

  std::int64_t max_microbatch = 1'000'000'000;

  // The paper's original-optimizations space (Fig. 5(a)): full recompute
  // on/off, plain all-reduce TP, 1F1B, no overlap, no sharding, no offload.
  [[nodiscard]] static SearchSpace MegatronBaseline();
  // Adds sequence parallelism + selective recompute (Fig. 5(b)).
  [[nodiscard]] static SearchSpace SequenceParallel();
  // The full Table 1 space without offloading.
  [[nodiscard]] static SearchSpace AllOptimizations();
  // The full Table 1 space including offloading.
  [[nodiscard]] static SearchSpace AllWithOffload();

  // Lossless JSON round-trip (FromJson(ToJson()) sweeps the identical
  // space in the identical order) — how a supervised dist worker receives
  // the space its parent is searching.
  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static SearchSpace FromJson(const json::Value& v);
};

struct SearchEntry {
  Execution exec;
  Stats stats;
};

// The search's total order on candidate results: higher sample rate wins,
// lower tier-1 memory breaks ties deterministically. Exposed so the
// supervised dist driver merges worker top-k lists with the identical
// ordering the in-process search uses.
[[nodiscard]] bool Better(const Stats& a, const Stats& b);

// Sorted bounded insert into a top-k list ordered by Better().
void InsertTopK(std::vector<SearchEntry>& best, int top_k, Execution exec,
                Stats stats);

struct SearchResult {
  std::vector<SearchEntry> best;  // sorted by descending sample rate
  std::uint64_t evaluated = 0;    // total calculations performed
  std::uint64_t feasible = 0;     // configurations that could run
  // Sample rate of every feasible configuration (collected when
  // `keep_all_rates` is set; used for the Fig. 6 histogram/CDF).
  std::vector<PerSecond> all_rates;
  // Non-dominated strategies in (batch time, tier-1 memory, tier-2 memory),
  // sorted by ascending batch time (collected when `keep_pareto` is set) —
  // the Section 4.2 "minimize time or memory, as desired" trade-off.
  std::vector<SearchEntry> pareto;
  // Failure summary of the sweep: whether the whole space was enumerated,
  // why it stopped early, and the isolated per-evaluation hard failures.
  // Default-complete when the search ran without a RunContext.
  RunStatus status;
};

struct SearchConfig {
  std::int64_t batch_size = 0;  // 0: default to num_procs samples
  int top_k = 10;
  bool keep_all_rates = false;
  bool keep_pareto = false;
  // Optional resilience context. When set, the sweep observes cancellation/
  // deadline/failure-budget between evaluations, and hard failures
  // (exceptions out of the model, kBadConfig hard-error Results, injected
  // faults) are isolated into `SearchResult::status` instead of aborting
  // the whole search. When null, exceptions propagate (fail-fast).
  RunContext* ctx = nullptr;
};

// Searches all execution strategies for `app` on `sys` (using
// `sys.num_procs()` processors).
[[nodiscard]] SearchResult FindOptimalExecution(const Application& app,
                                                const System& sys,
                                                const SearchSpace& space,
                                                const SearchConfig& config,
                                                ThreadPool& pool);

// The candidate (t, p, d) partitionings FindOptimalExecution sweeps, after
// structural filtering, in the order it sweeps them. The index into this
// vector is the stable per-triple work-unit id (it seeds the
// fault-injection key), so a dist worker sweeping triple i reproduces the
// in-process search's evaluations for triple i exactly.
[[nodiscard]] std::vector<Triple> SearchTriples(const Application& app,
                                                const System& sys,
                                                const SearchSpace& space,
                                                const SearchConfig& config);

// Outcome of sweeping a single triple: the work unit a dist worker ships
// back. `rejected` is indexed by Infeasible; `failures` are the isolated
// hard failures (replayed onto the parent's RunContext so failure-budget
// accounting is identical to the in-process sweep).
struct TripleSweep {
  std::vector<SearchEntry> best;  // the triple's top-k, sorted
  std::uint64_t evaluated = 0;
  std::uint64_t feasible = 0;
  std::vector<std::uint64_t> rejected;
  std::vector<FailureRecord> failures;
};

// Sweeps triples[index] of SearchTriples(app, sys, space, config) with the
// same evaluation order, fault-injection keys, and fault isolation as
// FindOptimalExecution. `keep_all_rates`/`keep_pareto` are ignored here
// (the dist driver falls back to in-process for those collectors).
[[nodiscard]] TripleSweep SweepTriple(const Application& app,
                                      const System& sys,
                                      const SearchSpace& space,
                                      const SearchConfig& config,
                                      std::uint64_t index);

}  // namespace calculon
