// System-size scaling sweeps (Section 5.2, Figs. 7/10/11).
//
// For each candidate processor count, runs the optimal-execution search and
// records the best achievable performance; the resulting envelope exposes
// the "efficiency cliffs" the paper describes.
#pragma once

#include <cstdint>
#include <vector>

#include "search/exec_search.h"

namespace calculon {

struct ScalingPoint {
  std::int64_t num_procs = 0;
  bool feasible = false;    // any configuration could run at this size
  PerSecond sample_rate;    // best performer (0 when infeasible)
  Execution best_exec;         // strategy of the best performer
};

struct ScalingOptions {
  // Processor counts to evaluate (e.g. multiples of 8 up to 8192).
  std::vector<std::int64_t> sizes;
  // Global batch per size; 0 means `num_procs` samples (weak scaling).
  std::int64_t batch_size = 0;
  // Optional resilience context: observed between sizes and threaded into
  // every inner execution search. A stopped sweep returns the points
  // evaluated so far.
  RunContext* ctx = nullptr;
};

[[nodiscard]] std::vector<ScalingPoint> ScalingSweep(
    const Application& app, const System& base_sys, const SearchSpace& space,
    const ScalingOptions& options, ThreadPool& pool);

// Convenience: {start, start+step, ..., stop} inclusive.
[[nodiscard]] std::vector<std::int64_t> SizeRange(std::int64_t start,
                                                  std::int64_t stop,
                                                  std::int64_t step);

}  // namespace calculon
