#include "search/system_search.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace calculon {

SystemSearchEntry EvaluateDesign(const Application& app,
                                 const SystemDesign& design,
                                 const SearchSpace& space,
                                 const SystemSearchOptions& options,
                                 ThreadPool& pool) {
  CALC_TRACE_SPAN("search", "system_search.design " + design.Label());
  SystemSearchEntry entry;
  entry.design = design;
  entry.max_gpus = design.MaxGpus(options.budget);

  std::vector<std::int64_t> sizes;
  for (std::int64_t n = options.size_step; n < entry.max_gpus;
       n += options.size_step) {
    sizes.push_back(n);
  }
  if (entry.max_gpus > 0) sizes.push_back(entry.max_gpus);

  for (std::int64_t n : sizes) {
    if (options.ctx != nullptr && options.ctx->ShouldStop()) break;
    const System sys = design.Build(n);
    SearchConfig config;
    config.top_k = 1;
    config.batch_size =
        options.batch_size > 0 ? options.batch_size : n;
    config.ctx = options.ctx;
    const SearchResult result =
        FindOptimalExecution(app, sys, space, config, pool);
    if (result.best.empty()) continue;
    const PerSecond rate = result.best.front().stats.sample_rate;
    if (!entry.feasible || rate > entry.sample_rate) {
      entry.feasible = true;
      entry.used_gpus = n;
      entry.sample_rate = rate;
      entry.best_exec = result.best.front().exec;
    }
  }
  if (entry.feasible) {
    const double used_cost_millions =
        static_cast<double>(entry.used_gpus) * design.UnitPrice() / 1e6;
    entry.perf_per_million =
        entry.sample_rate.raw() / used_cost_millions;  // unit-ok: per-dollar
  }
  return entry;
}

std::vector<SystemSearchEntry> OptimalSystemSearch(
    const Application& app, const std::vector<SystemDesign>& designs,
    const SearchSpace& space, const SystemSearchOptions& options,
    ThreadPool& pool) {
  return RunSystemSearch(app, designs, space, options, pool).entries;
}

SystemSearchResult RunSystemSearch(const Application& app,
                                   const std::vector<SystemDesign>& designs,
                                   const SearchSpace& space,
                                   const SystemSearchOptions& options,
                                   ThreadPool& pool) {
  CALC_TRACE_SPAN("search", "system_search");
  SystemSearchResult result;
  result.entries.reserve(designs.size());
  for (const SystemDesign& design : designs) {
    if (options.ctx != nullptr && options.ctx->ShouldStop()) break;
    result.entries.push_back(
        EvaluateDesign(app, design, space, options, pool));
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    if (metrics.enabled()) {
      metrics.GetCounter("system_search.designs_evaluated")->Increment();
      if (!result.entries.back().feasible) {
        metrics.GetCounter("system_search.designs_infeasible")->Increment();
      }
    }
  }
  if (options.ctx != nullptr) result.status = options.ctx->Snapshot();
  return result;
}

}  // namespace calculon
