// Optimal-system search (Section 7, Table 3): given a budget, evaluate a
// menu of system designs by sweeping system sizes and execution strategies
// and report performance and performance per dollar.
#pragma once

#include <cstdint>
#include <vector>

#include "models/application.h"
#include "search/exec_search.h"
#include "search/pricing.h"

namespace calculon {

struct SystemSearchOptions {
  double budget = 125e6;        // dollars
  std::int64_t size_step = 8;   // granularity of the system-size sweep
  std::int64_t batch_size = 0;  // 0: num_procs samples per size
  // Optional resilience context, observed between sizes/designs and threaded
  // into every inner execution search (see SearchConfig::ctx).
  RunContext* ctx = nullptr;
};

struct SystemSearchEntry {
  SystemDesign design;
  std::int64_t max_gpus = 0;    // affordable under the budget
  std::int64_t used_gpus = 0;  // best-performing size <= max_gpus
  PerSecond sample_rate;
  double perf_per_million = 0.0;  // sample_rate / (used cost in $M)
  Execution best_exec;
  bool feasible = false;
};

// Evaluates one design: sweeps sizes `size_step, 2*size_step, ..., max`
// (always including max) and keeps the best performer.
[[nodiscard]] SystemSearchEntry EvaluateDesign(
    const Application& app, const SystemDesign& design,
    const SearchSpace& space, const SystemSearchOptions& options,
    ThreadPool& pool);

// Full Table 3 row set for one application.
[[nodiscard]] std::vector<SystemSearchEntry> OptimalSystemSearch(
    const Application& app, const std::vector<SystemDesign>& designs,
    const SearchSpace& space, const SystemSearchOptions& options,
    ThreadPool& pool);

// Resilient variant: the entries plus the sweep's failure summary. With a
// RunContext in `options`, a cancelled/deadline-stopped run returns the
// designs evaluated so far, explicitly marked incomplete.
struct SystemSearchResult {
  std::vector<SystemSearchEntry> entries;
  RunStatus status;
};

[[nodiscard]] SystemSearchResult RunSystemSearch(
    const Application& app, const std::vector<SystemDesign>& designs,
    const SearchSpace& space, const SystemSearchOptions& options,
    ThreadPool& pool);

}  // namespace calculon
