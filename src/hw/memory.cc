#include "hw/memory.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace calculon {

Memory::Memory(double capacity_bytes, double bandwidth_bytes_per_s,
               EfficiencyCurve efficiency)
    : capacity_(capacity_bytes),
      bandwidth_(bandwidth_bytes_per_s),
      efficiency_(std::move(efficiency)) {
  if (capacity_ < 0.0 || bandwidth_ < 0.0) {
    throw ConfigError("memory capacity/bandwidth must be >= 0");
  }
}

double Memory::AccessTime(double bytes) const {
  // Negative byte counts are clamped to zero time by the documented
  // contract below; only NaN is a caller bug.
  CALC_DCHECK(!std::isnan(bytes), "bytes = %g", bytes);
  if (bytes <= 0.0) return 0.0;
  const double bw = EffectiveBandwidth(bytes);
  if (bw <= 0.0) return std::numeric_limits<double>::infinity();
  return bytes / bw;
}

double Memory::EffectiveBandwidth(double bytes) const {
  return bandwidth_ * efficiency_.At(bytes);
}

json::Value Memory::ToJson() const {
  json::Object o;
  o["capacity"] = capacity_;
  o["bandwidth"] = bandwidth_;
  o["efficiency"] = efficiency_.ToJson();
  return json::Value(std::move(o));
}

Memory Memory::FromJson(const json::Value& v) {
  return Memory(v.at("capacity").AsDouble(), v.at("bandwidth").AsDouble(),
                v.contains("efficiency")
                    ? EfficiencyCurve::FromJson(v.at("efficiency"))
                    : EfficiencyCurve(1.0));
}

}  // namespace calculon
