#include "hw/memory.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace calculon {

Memory::Memory(Bytes capacity, BytesPerSecond bandwidth,
               EfficiencyCurve efficiency)
    : capacity_(capacity),
      bandwidth_(bandwidth),
      efficiency_(std::move(efficiency)) {
  if (capacity_ < Bytes(0.0) || bandwidth_ < BytesPerSecond(0.0)) {
    throw ConfigError("memory capacity/bandwidth must be >= 0");
  }
}

Seconds Memory::AccessTime(Bytes bytes) const {
  // Negative byte counts are clamped to zero time by the documented
  // contract below; only NaN is a caller bug.
  CALC_DCHECK(!IsNan(bytes), "bytes = %g",
              bytes.raw());  // unit-ok: diagnostic message
  if (bytes <= Bytes(0.0)) return Seconds(0.0);
  const BytesPerSecond bw = EffectiveBandwidth(bytes);
  if (bw <= BytesPerSecond(0.0)) {
    return Seconds(std::numeric_limits<double>::infinity());
  }
  return bytes / bw;
}

BytesPerSecond Memory::EffectiveBandwidth(Bytes bytes) const {
  return bandwidth_ * efficiency_.At(bytes);
}

json::Value Memory::ToJson() const {
  json::Object o;
  o["capacity"] = capacity_.raw();  // unit-ok: JSON serialize boundary
  o["bandwidth"] = bandwidth_.raw();  // unit-ok: JSON serialize boundary
  o["efficiency"] = efficiency_.ToJson();
  return json::Value(std::move(o));
}

Memory Memory::FromJson(const json::Value& v) {
  return Memory(Bytes(v.at("capacity").AsDouble()),
                BytesPerSecond(v.at("bandwidth").AsDouble()),
                v.contains("efficiency")
                    ? EfficiencyCurve::FromJson(v.at("efficiency"))
                    : EfficiencyCurve(1.0));
}

}  // namespace calculon
