#include "hw/presets.h"

#include "util/error.h"
#include "util/units.h"

namespace calculon::presets {
namespace {

// Saturation curves shared by the GPU presets. The shapes follow the usual
// published utilization behaviour (small GEMMs and short messages run far
// below peak); the top-end values are calibrated so that the model's
// Table 2 validation predictions land near the paper's.
EfficiencyCurve GemmEfficiency() {
  return EfficiencyCurve({{0.0, 0.05},
                          {1e8, 0.20},
                          {1e9, 0.35},
                          {1e10, 0.55},
                          {1e11, 0.72},
                          {1e12, 0.78},
                          {1e13, 0.82}});
}

EfficiencyCurve VectorEfficiency() {
  return EfficiencyCurve({{0.0, 0.10}, {1e6, 0.40}, {1e8, 0.75}, {1e9, 0.90}});
}

EfficiencyCurve HbmEfficiency() {
  return EfficiencyCurve({{0.0, 0.20}, {1e6, 0.60}, {1e8, 0.83}, {1e9, 0.90}});
}

EfficiencyCurve LinkEfficiency() {
  return EfficiencyCurve({{0.0, 0.25}, {1e6, 0.60}, {1e8, 0.85}, {1e9, 0.92}});
}

System BuildGpuSystem(const std::string& name, const SystemOptions& o,
                      FlopsPerSecond matrix_flops, FlopsPerSecond vector_flops,
                      BytesPerSecond hbm_bandwidth,
                      BytesPerSecond nvlink_bandwidth,
                      BytesPerSecond fabric_bandwidth) {
  Processor proc;
  proc.matrix = ComputeUnit(matrix_flops, GemmEfficiency());
  proc.vector = ComputeUnit(vector_flops, VectorEfficiency());
  proc.mem1 = Memory(o.hbm_capacity, hbm_bandwidth, HbmEfficiency());
  if (o.offload_capacity > Bytes(0.0)) {
    proc.mem2 = Memory(o.offload_capacity, o.offload_bandwidth,
                       EfficiencyCurve(1.0));
  }
  std::vector<Network> nets;
  // Fast domain (NVLink): ~15% of processor cores drive NCCL at full rate.
  nets.emplace_back(o.nvlink_domain, nvlink_bandwidth, Seconds(2e-6),
                    LinkEfficiency(),
                    /*in_network_collectives=*/false,
                    /*processor_fraction=*/0.15);
  // Scale-out fabric (InfiniBand): NIC-driven, ~2% of cores.
  nets.emplace_back(o.num_procs, fabric_bandwidth, Seconds(5e-6),
                    LinkEfficiency(),
                    /*in_network_collectives=*/false,
                    /*processor_fraction=*/0.02);
  return System(name, o.num_procs, std::move(proc), std::move(nets));
}

}  // namespace

System A100(const SystemOptions& options) {
  return BuildGpuSystem("a100", options,
                        /*matrix_flops=*/TFLOPS(312), /*vector_flops=*/TFLOPS(78),
                        /*hbm_bandwidth=*/TBps(2.0),
                        /*nvlink_bandwidth=*/GBps(300),
                        /*fabric_bandwidth=*/GBps(25));
}

System H100(const SystemOptions& options) {
  return BuildGpuSystem("h100", options,
                        /*matrix_flops=*/TFLOPS(990), /*vector_flops=*/TFLOPS(134),
                        /*hbm_bandwidth=*/TBps(3.0),
                        /*nvlink_bandwidth=*/GBps(450),
                        /*fabric_bandwidth=*/GBps(50));
}

System SystemByName(const std::string& name) {
  SystemOptions o;
  if (name == "a100_80g") return A100(o);
  if (name == "a100_40g") {
    o.hbm_capacity = GiB(40);
    return A100(o);
  }
  if (name == "h100_80g") return H100(o);
  if (name == "h100_80g_offload") {
    o.offload_capacity = GiB(512);
    o.offload_bandwidth = GBps(100);
    return H100(o);
  }
  if (name == "h100_80g_offload_inf") {
    o.offload_capacity = Bytes(1e18);  // effectively infinite
    o.offload_bandwidth = BytesPerSecond(1e15);
    return H100(o);
  }
  if (name == "h100_nvl256") return H100Nvl256(o);
  throw ConfigError("unknown system preset: " + name);
}

std::vector<std::string> SystemNames() {
  return {"a100_80g", "a100_40g", "h100_80g", "h100_80g_offload",
          "h100_80g_offload_inf", "h100_nvl256"};
}

System H100Nvl256(const SystemOptions& options) {
  // H100 with a switched NVLink fabric spanning 256 GPUs (NVL256-style):
  // a three-tier network — the 8-GPU board at full NVLink rate, the
  // 256-GPU NVLink Switch domain at roughly half rate, and InfiniBand NDR
  // beyond. Lets tensor parallelism scale past one board, the scenario
  // the paper's Section 6 discussion ("TP up to 16") implies.
  Processor proc;
  proc.matrix = ComputeUnit(TFLOPS(990), GemmEfficiency());
  proc.vector = ComputeUnit(TFLOPS(134), VectorEfficiency());
  proc.mem1 = Memory(options.hbm_capacity, TBps(3.0), HbmEfficiency());
  if (options.offload_capacity > Bytes(0.0)) {
    proc.mem2 = Memory(options.offload_capacity, options.offload_bandwidth,
                       EfficiencyCurve(1.0));
  }
  std::vector<Network> nets;
  nets.emplace_back(8, GBps(450), Seconds(2e-6), LinkEfficiency(), false,
                    0.15);
  nets.emplace_back(256, GBps(225), Seconds(3e-6), LinkEfficiency(), false,
                    0.15);
  nets.emplace_back(options.num_procs, GBps(50), Seconds(5e-6),
                    LinkEfficiency(), false, 0.02);
  return System("h100_nvl256", options.num_procs, std::move(proc),
                std::move(nets));
}

}  // namespace calculon::presets
