#include "hw/system.h"

#include <algorithm>

#include "util/strings.h"

namespace calculon {

System::System(std::string name, std::int64_t num_procs, Processor proc,
               std::vector<Network> networks)
    : name_(std::move(name)),
      num_procs_(num_procs),
      proc_(std::move(proc)),
      networks_(std::move(networks)) {
  if (num_procs_ < 1) throw ConfigError("system needs >= 1 processor");
  if (networks_.empty()) throw ConfigError("system needs >= 1 network");
  std::sort(networks_.begin(), networks_.end(),
            [](const Network& a, const Network& b) {
              return a.size() < b.size();
            });
}

const Network* System::NetworkForSpan(std::int64_t span) const {
  for (const Network& net : networks_) {
    if (net.size() >= span) return &net;
  }
  return nullptr;
}

System System::WithNumProcs(std::int64_t n) const {
  System copy = *this;
  if (n < 1) throw ConfigError("system needs >= 1 processor");
  copy.num_procs_ = n;
  // The outermost network always spans the machine: grow it if needed so
  // size sweeps do not silently make large partitions unroutable.
  if (!copy.networks_.empty() && copy.networks_.back().size() < n) {
    copy.networks_.back() = copy.networks_.back().WithSize(n);
  }
  return copy;
}

json::Value System::ToJson() const {
  json::Object o;
  o["name"] = name_;
  o["num_procs"] = num_procs_;
  o["processor"] = proc_.ToJson();
  json::Array nets;
  for (const Network& n : networks_) nets.push_back(n.ToJson());
  o["networks"] = json::Value(std::move(nets));
  return json::Value(std::move(o));
}

System System::FromJson(const json::Value& v) {
  std::vector<Network> nets;
  for (const json::Value& nv : v.at("networks").AsArray()) {
    nets.push_back(Network::FromJson(nv));
  }
  return System(v.GetString("name", "unnamed"), v.at("num_procs").AsInt(),
                Processor::FromJson(v.at("processor")), std::move(nets));
}

}  // namespace calculon
