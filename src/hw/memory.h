// Memory tier model: capacity, bandwidth and a size-based efficiency curve.
//
// The processor has a two-level hierarchy: tier 1 (HBM) feeds computation,
// tier 2 (CPU DDR / CXL) stashes bulk data for tensor offloading.
#pragma once

#include "hw/efficiency.h"
#include "json/json.h"

namespace calculon {

class Memory {
 public:
  Memory() = default;
  Memory(double capacity_bytes, double bandwidth_bytes_per_s,
         EfficiencyCurve efficiency = EfficiencyCurve(1.0));

  // Time to move `bytes` through this memory. Zero bytes take zero time; a
  // zero-bandwidth (absent) tier reports infinity for any positive transfer.
  [[nodiscard]] double AccessTime(double bytes) const;

  // Achievable bandwidth for transfers of a given size.
  [[nodiscard]] double EffectiveBandwidth(double bytes) const;

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }
  [[nodiscard]] bool present() const { return capacity_ > 0.0; }

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static Memory FromJson(const json::Value& v);

 private:
  double capacity_ = 0.0;
  double bandwidth_ = 0.0;
  EfficiencyCurve efficiency_{1.0};
};

}  // namespace calculon
