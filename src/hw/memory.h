// Memory tier model: capacity, bandwidth and a size-based efficiency curve.
//
// The processor has a two-level hierarchy: tier 1 (HBM) feeds computation,
// tier 2 (CPU DDR / CXL) stashes bulk data for tensor offloading.
#pragma once

#include "hw/efficiency.h"
#include "json/json.h"
#include "util/quantity.h"

namespace calculon {

class Memory {
 public:
  Memory() = default;
  Memory(Bytes capacity, BytesPerSecond bandwidth,
         EfficiencyCurve efficiency = EfficiencyCurve(1.0));

  // Time to move `bytes` through this memory. Zero bytes take zero time; a
  // zero-bandwidth (absent) tier reports infinity for any positive transfer.
  [[nodiscard]] Seconds AccessTime(Bytes bytes) const;

  // Achievable bandwidth for transfers of a given size.
  [[nodiscard]] BytesPerSecond EffectiveBandwidth(Bytes bytes) const;

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] BytesPerSecond bandwidth() const { return bandwidth_; }
  [[nodiscard]] bool present() const { return capacity_ > Bytes(0.0); }

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static Memory FromJson(const json::Value& v);

 private:
  Bytes capacity_;
  BytesPerSecond bandwidth_;
  EfficiencyCurve efficiency_{1.0};
};

}  // namespace calculon
