// Built-in hardware system presets matching the configurations the paper
// evaluates: A100-based clusters (Selene-like, NVLink 8 + InfiniBand HDR)
// and H100-based clusters (NVLink 8 + InfiniBand NDR) with configurable HBM
// capacity, NVLink domain size, and an optional offload memory tier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/system.h"
#include "util/units.h"

namespace calculon::presets {

// Options shared by the builders; defaults give the paper's baselines.
struct SystemOptions {
  std::int64_t num_procs = 4096;
  std::int64_t nvlink_domain = 8;       // processors per fast domain
  Bytes hbm_capacity = GiB(80);         // tier-1 capacity per processor
  Bytes offload_capacity = Bytes(0.0);  // tier-2 capacity (0 = absent)
  BytesPerSecond offload_bandwidth =
      BytesPerSecond(0.0);              // tier-2 rate per direction
};

// NVIDIA A100 SXM 80 GiB-class processor: 312 Tflop/s fp16 matrix,
// 78 Tflop/s vector, ~2 TB/s HBM2e, NVLink3 300 GB/s/direction,
// InfiniBand HDR 25 GB/s.
[[nodiscard]] System A100(const SystemOptions& options = {});

// NVIDIA H100 SXM-class processor: 990 Tflop/s fp16 matrix, 134 Tflop/s
// vector, 3 TB/s HBM3 (the paper's fixed rate for all HBM variants),
// NVLink4 450 GB/s/direction, InfiniBand NDR 50 GB/s.
[[nodiscard]] System H100(const SystemOptions& options = {});

// H100 with a three-tier network: 8-GPU board, a 256-GPU switched NVLink
// domain at half rate, and InfiniBand NDR beyond — lets TP scale past one
// board (`options.nvlink_domain` is ignored).
[[nodiscard]] System H100Nvl256(const SystemOptions& options = {});

// Lookup by name ("a100_80g", "h100_80g", ...). Throws ConfigError on
// unknown names. Recognized names are listed in `SystemNames()`.
[[nodiscard]] System SystemByName(const std::string& name);
[[nodiscard]] std::vector<std::string> SystemNames();

}  // namespace calculon::presets
