#include "hw/network.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace calculon {

const char* ToString(Collective op) {
  switch (op) {
    case Collective::kAllReduce: return "all-reduce";
    case Collective::kAllGather: return "all-gather";
    case Collective::kReduceScatter: return "reduce-scatter";
    case Collective::kBroadcast: return "broadcast";
    case Collective::kPointToPoint: return "p2p";
  }
  return "?";
}

Network::Network(std::int64_t size, BytesPerSecond bandwidth, Seconds latency,
                 EfficiencyCurve efficiency, bool in_network_collectives,
                 double processor_fraction)
    : size_(size),
      bandwidth_(bandwidth),
      latency_(latency),
      efficiency_(std::move(efficiency)),
      in_network_(in_network_collectives),
      proc_fraction_(processor_fraction) {
  if (size_ < 1) throw ConfigError("network size must be >= 1");
  if (bandwidth_ < BytesPerSecond(0.0) || latency_ < Seconds(0.0)) {
    throw ConfigError("network bandwidth/latency must be >= 0");
  }
  if (proc_fraction_ < 0.0 || proc_fraction_ > 1.0) {
    throw ConfigError("network processor fraction out of [0, 1]");
  }
}

BytesPerSecond Network::EffectiveBandwidth(Bytes bytes) const {
  return bandwidth_ * efficiency_.At(bytes);
}

Bytes Network::LinkBytes(Collective op, std::int64_t members,
                         Bytes bytes) const {
  CALC_DCHECK(members >= 1, "members = %lld",
              static_cast<long long>(members));
  CALC_DCHECK(IsFinite(bytes) && bytes >= Bytes(0.0), "bytes = %g",
              bytes.raw());  // unit-ok: diagnostic message
  if (members <= 1 || bytes <= Bytes(0.0)) return Bytes(0.0);
  const double n = static_cast<double>(members);
  const double share = (n - 1.0) / n;
  switch (op) {
    case Collective::kAllReduce:
      // Ring all-reduce = reduce-scatter + all-gather. In-network reduction
      // sends the payload once.
      return in_network_ ? bytes : 2.0 * share * bytes;
    case Collective::kAllGather:
    case Collective::kReduceScatter:
      return share * bytes;
    case Collective::kBroadcast:
    case Collective::kPointToPoint:
      return bytes;
  }
  return bytes;
}

Seconds Network::CollectiveTime(Collective op, std::int64_t members,
                                Bytes bytes) const {
  CALC_DCHECK(members >= 1, "members = %lld",
              static_cast<long long>(members));
  if (members <= 1 || bytes <= Bytes(0.0)) return Seconds(0.0);
  const Bytes link_bytes = LinkBytes(op, members, bytes);
  const BytesPerSecond bw = EffectiveBandwidth(link_bytes);
  if (bw <= BytesPerSecond(0.0)) {
    return Seconds(std::numeric_limits<double>::infinity());
  }
  // Latency: ring collectives serialize (members - 1) steps per phase;
  // point-to-point and in-network operations pay a single hop.
  double steps = 1.0;
  const double n = static_cast<double>(members);
  switch (op) {
    case Collective::kAllReduce:
      steps = in_network_ ? 2.0 : 2.0 * (n - 1.0);
      break;
    case Collective::kAllGather:
    case Collective::kReduceScatter:
      steps = n - 1.0;
      break;
    case Collective::kBroadcast:
      steps = std::ceil(std::log2(n));
      break;
    case Collective::kPointToPoint:
      steps = 1.0;
      break;
  }
  return link_bytes / bw + steps * latency_;
}

Network Network::WithSize(std::int64_t size) const {
  Network copy = *this;
  if (size < 1) throw ConfigError("network size must be >= 1");
  copy.size_ = size;
  return copy;
}

json::Value Network::ToJson() const {
  json::Object o;
  o["size"] = size_;
  o["bandwidth"] = bandwidth_.raw();  // unit-ok: JSON serialize boundary
  o["latency"] = latency_.raw();  // unit-ok: JSON serialize boundary
  o["efficiency"] = efficiency_.ToJson();
  o["in_network_collectives"] = in_network_;
  o["processor_fraction"] = proc_fraction_;
  return json::Value(std::move(o));
}

Network Network::FromJson(const json::Value& v) {
  return Network(v.at("size").AsInt(),
                 BytesPerSecond(v.at("bandwidth").AsDouble()),
                 Seconds(v.GetDouble("latency", 0.0)),
                 v.contains("efficiency")
                     ? EfficiencyCurve::FromJson(v.at("efficiency"))
                     : EfficiencyCurve(1.0),
                 v.GetBool("in_network_collectives", false),
                 v.GetDouble("processor_fraction", 0.0));
}

}  // namespace calculon
