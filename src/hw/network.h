// Network tier model.
//
// Each processor connects to one or more networks. A network is programmed
// with a size (how many processors its domain spans), per-direction link
// bandwidth, latency, a size-based efficiency curve, whether it supports
// in-network collectives (SHARP-style all-reduce at wire speed), and the
// fraction of processor compute consumed when driving the network at full
// bandwidth (used to model the slowdown of communication/compute overlap).
#pragma once

#include <cstdint>

#include "hw/efficiency.h"
#include "json/json.h"

namespace calculon {

enum class Collective {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kBroadcast,
  kPointToPoint,
};

[[nodiscard]] const char* ToString(Collective op);

class Network {
 public:
  Network() = default;
  Network(std::int64_t size, double bandwidth_bytes_per_s, double latency_s,
          EfficiencyCurve efficiency = EfficiencyCurve(1.0),
          bool in_network_collectives = false,
          double processor_fraction = 0.0);

  // Time for `op` over a communicator of `members` processors moving a
  // payload of `bytes` (the full tensor size; per-member shares are derived
  // from the ring algorithms). A communicator of one member costs nothing.
  [[nodiscard]] double CollectiveTime(Collective op, std::int64_t members,
                                      double bytes) const;

  // Bytes that actually cross this processor's link for `op` (used for
  // bandwidth-demand accounting and overlap modeling).
  [[nodiscard]] double LinkBytes(Collective op, std::int64_t members,
                                 double bytes) const;

  [[nodiscard]] std::int64_t size() const { return size_; }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }
  [[nodiscard]] double latency() const { return latency_; }
  [[nodiscard]] bool in_network_collectives() const { return in_network_; }
  [[nodiscard]] double processor_fraction() const { return proc_fraction_; }

  [[nodiscard]] double EffectiveBandwidth(double bytes) const;
  [[nodiscard]] const EfficiencyCurve& efficiency() const {
    return efficiency_;
  }

  // Copy of this network with a different domain size.
  [[nodiscard]] Network WithSize(std::int64_t size) const;

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static Network FromJson(const json::Value& v);

 private:
  std::int64_t size_ = 1;
  double bandwidth_ = 0.0;
  double latency_ = 0.0;
  EfficiencyCurve efficiency_{1.0};
  bool in_network_ = false;
  double proc_fraction_ = 0.0;
};

}  // namespace calculon
