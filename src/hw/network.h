// Network tier model.
//
// Each processor connects to one or more networks. A network is programmed
// with a size (how many processors its domain spans), per-direction link
// bandwidth, latency, a size-based efficiency curve, whether it supports
// in-network collectives (SHARP-style all-reduce at wire speed), and the
// fraction of processor compute consumed when driving the network at full
// bandwidth (used to model the slowdown of communication/compute overlap).
#pragma once

#include <cstdint>

#include "hw/efficiency.h"
#include "json/json.h"
#include "util/quantity.h"

namespace calculon {

enum class Collective {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kBroadcast,
  kPointToPoint,
};

[[nodiscard]] const char* ToString(Collective op);

class Network {
 public:
  Network() = default;
  Network(std::int64_t size, BytesPerSecond bandwidth, Seconds latency,
          EfficiencyCurve efficiency = EfficiencyCurve(1.0),
          bool in_network_collectives = false,
          double processor_fraction = 0.0);

  // Time for `op` over a communicator of `members` processors moving a
  // payload of `bytes` (the full tensor size; per-member shares are derived
  // from the ring algorithms). A communicator of one member costs nothing.
  [[nodiscard]] Seconds CollectiveTime(Collective op, std::int64_t members,
                                       Bytes bytes) const;

  // Bytes that actually cross this processor's link for `op` (used for
  // bandwidth-demand accounting and overlap modeling).
  [[nodiscard]] Bytes LinkBytes(Collective op, std::int64_t members,
                                Bytes bytes) const;

  [[nodiscard]] std::int64_t size() const { return size_; }
  [[nodiscard]] BytesPerSecond bandwidth() const { return bandwidth_; }
  [[nodiscard]] Seconds latency() const { return latency_; }
  [[nodiscard]] bool in_network_collectives() const { return in_network_; }
  [[nodiscard]] double processor_fraction() const { return proc_fraction_; }

  [[nodiscard]] BytesPerSecond EffectiveBandwidth(Bytes bytes) const;
  [[nodiscard]] const EfficiencyCurve& efficiency() const {
    return efficiency_;
  }

  // Copy of this network with a different domain size.
  [[nodiscard]] Network WithSize(std::int64_t size) const;

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static Network FromJson(const json::Value& v);

 private:
  std::int64_t size_ = 1;
  BytesPerSecond bandwidth_;
  Seconds latency_;
  EfficiencyCurve efficiency_{1.0};
  bool in_network_ = false;
  double proc_fraction_ = 0.0;
};

}  // namespace calculon
