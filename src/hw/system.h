// Whole-system description: processor count, the processor model, and the
// network tiers the processors connect to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/network.h"
#include "hw/processor.h"
#include "json/json.h"

namespace calculon {

class System {
 public:
  System() = default;
  System(std::string name, std::int64_t num_procs, Processor proc,
         std::vector<Network> networks);

  // The network a communicator spanning `span` consecutive processors uses:
  // the smallest tier whose domain covers the span. Communicators are placed
  // innermost-first (TP, then PP, then DP), so a communicator's span is the
  // product of its own size and the sizes of all parallelism modes nested
  // inside it. Returns nullptr when no tier is large enough.
  [[nodiscard]] const Network* NetworkForSpan(std::int64_t span) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int64_t num_procs() const { return num_procs_; }
  [[nodiscard]] const Processor& proc() const { return proc_; }
  [[nodiscard]] const std::vector<Network>& networks() const {
    return networks_;
  }

  // Copy with a different processor count (used by system-size sweeps).
  [[nodiscard]] System WithNumProcs(std::int64_t n) const;

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static System FromJson(const json::Value& v);

 private:
  std::string name_;
  std::int64_t num_procs_ = 1;
  Processor proc_;
  std::vector<Network> networks_;  // ascending by size
};

}  // namespace calculon
