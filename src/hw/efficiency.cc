#include "hw/efficiency.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace calculon {

EfficiencyCurve::EfficiencyCurve(double flat) {
  if (flat <= 0.0 || flat > 1.0) {
    throw ConfigError(StrFormat("efficiency %g out of (0, 1]", flat));
  }
  points_.push_back({0.0, flat});
}

EfficiencyCurve::EfficiencyCurve(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.empty()) throw ConfigError("efficiency curve needs >= 1 point");
  double prev_size = -1.0;
  for (const Point& p : points_) {
    if (p.size < 0.0 || p.size <= prev_size) {
      throw ConfigError("efficiency curve sizes must be increasing");
    }
    if (p.efficiency <= 0.0 || p.efficiency > 1.0) {
      throw ConfigError(
          StrFormat("efficiency %g out of (0, 1]", p.efficiency));
    }
    prev_size = p.size;
  }
}

double EfficiencyCurve::At(double size) const {
  if (points_.size() == 1 || size <= points_.front().size) {
    return points_.front().efficiency;
  }
  if (size >= points_.back().size) return points_.back().efficiency;
  // Find the segment containing `size` and interpolate in log-size space
  // (sizes span many orders of magnitude; linear-in-log is the natural
  // shape for saturation curves).
  auto hi = std::upper_bound(
      points_.begin(), points_.end(), size,
      [](double s, const Point& p) { return s < p.size; });
  auto lo = hi - 1;
  const double lo_size = std::max(lo->size, 1.0);
  const double hi_size = std::max(hi->size, lo_size * (1.0 + 1e-12));
  const double f = (std::log(std::max(size, 1.0)) - std::log(lo_size)) /
                   (std::log(hi_size) - std::log(lo_size));
  const double clamped = std::clamp(f, 0.0, 1.0);
  return lo->efficiency + clamped * (hi->efficiency - lo->efficiency);
}

json::Value EfficiencyCurve::ToJson() const {
  if (is_flat()) return json::Value(points_.front().efficiency);
  json::Array arr;
  for (const Point& p : points_) {
    arr.push_back(json::Array{p.size, p.efficiency});
  }
  return json::Value(std::move(arr));
}

EfficiencyCurve EfficiencyCurve::FromJson(const json::Value& v) {
  if (v.is_number()) return EfficiencyCurve(v.AsDouble());
  std::vector<Point> points;
  for (const json::Value& pv : v.AsArray()) {
    const json::Array& pair = pv.AsArray();
    if (pair.size() != 2) throw ConfigError("efficiency point needs 2 items");
    points.push_back({pair[0].AsDouble(), pair[1].AsDouble()});
  }
  return EfficiencyCurve(std::move(points));
}

}  // namespace calculon
