// Processing model: how long a computational operation takes.
//
// Computation is assigned to either "matrix" execution (GEMMs, batched
// matmuls) or "vector" execution (element-wise layers, normalizations,
// softmax). Each compute unit has a peak throughput and a size-based
// efficiency curve. An operation's time considers both raw compute (FLOPs)
// and raw memory accesses to tier-1 memory; the default combination is the
// roofline maximum of the two (an ablation supports the additive model).
#pragma once

#include "hw/efficiency.h"
#include "hw/memory.h"
#include "json/json.h"

namespace calculon {

enum class ComputeKind { kMatrix, kVector };

enum class RooflineMode {
  kMax,  // time = max(flop_time, mem_time): perfect overlap of units
  kSum,  // time = flop_time + mem_time: no overlap (pessimistic ablation)
};

class ComputeUnit {
 public:
  ComputeUnit() = default;
  ComputeUnit(FlopsPerSecond peak, EfficiencyCurve efficiency);

  // Time to execute `flops` at the efficiency this operation size achieves.
  [[nodiscard]] Seconds FlopTime(Flops flops) const;
  [[nodiscard]] FlopsPerSecond peak_flops() const { return peak_; }
  [[nodiscard]] double Efficiency(Flops flops) const {
    return efficiency_.At(flops);
  }

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static ComputeUnit FromJson(const json::Value& v);

 private:
  FlopsPerSecond peak_;
  EfficiencyCurve efficiency_{1.0};
};

// A processor: matrix unit, vector unit and its tier-1 / tier-2 memories.
struct Processor {
  ComputeUnit matrix;
  ComputeUnit vector;
  Memory mem1;  // HBM: feeds computation
  Memory mem2;  // offload tier (CPU DDR / CXL); may be absent
  RooflineMode roofline = RooflineMode::kMax;

  // Time of one operation of `kind` performing `flops` while moving `bytes`
  // through tier-1 memory. A slowdown factor > 0 models compute stolen by a
  // concurrently-driven network (overlap throttling).
  [[nodiscard]] Seconds OpTime(ComputeKind kind, Flops flops, Bytes bytes,
                               double compute_slowdown = 0.0) const;

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static Processor FromJson(const json::Value& v);
};

}  // namespace calculon
