// Size-dependent efficiency curves.
//
// The paper's hardware model parameterizes the performance of each resource
// (matrix unit, vector unit, memories, networks) by input size: small GEMMs
// run at a lower fraction of peak than large ones, short messages do not
// saturate link bandwidth, etc. A curve is a piecewise mapping from "size"
// (FLOPs of an operation, bytes of a transfer) to a fraction of peak in
// (0, 1], interpolated log-linearly between the given points.
#pragma once

#include <string>
#include <vector>

#include "json/json.h"
#include "util/quantity.h"

namespace calculon {

class EfficiencyCurve {
 public:
  struct Point {
    double size;        // operation size (flops or bytes); >= 0
    double efficiency;  // fraction of peak in (0, 1]
  };

  // Flat efficiency, independent of size.
  explicit EfficiencyCurve(double flat = 1.0);
  // Piecewise curve; points must have strictly increasing sizes and
  // efficiencies in (0, 1]. Sizes below the first point clamp to the first
  // efficiency; sizes above the last clamp to the last.
  explicit EfficiencyCurve(std::vector<Point> points);

  // Efficiency at a given operation size. A curve is generic over what
  // "size" measures, so the raw overload stays; the typed overloads are the
  // entry points for dimensioned callers.
  [[nodiscard]] double At(double size) const;  // unit-ok: dimension-generic
  [[nodiscard]] double At(Bytes size) const {
    return At(size.raw());  // unit-ok: adapter to the generic curve
  }
  [[nodiscard]] double At(Flops size) const {
    return At(size.raw());  // unit-ok: adapter to the generic curve
  }

  [[nodiscard]] bool is_flat() const { return points_.size() == 1; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  [[nodiscard]] json::Value ToJson() const;
  [[nodiscard]] static EfficiencyCurve FromJson(const json::Value& v);

 private:
  std::vector<Point> points_;
};

}  // namespace calculon
