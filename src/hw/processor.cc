#include "hw/processor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace calculon {

ComputeUnit::ComputeUnit(double peak_flops, EfficiencyCurve efficiency)
    : peak_(peak_flops), efficiency_(std::move(efficiency)) {
  if (peak_ < 0.0) throw ConfigError("peak flops must be >= 0");
}

double ComputeUnit::FlopTime(double flops) const {
  CALC_DCHECK(std::isfinite(flops) && flops >= 0.0, "flops = %g", flops);
  if (flops <= 0.0) return 0.0;
  const double rate = peak_ * efficiency_.At(flops);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return flops / rate;
}

json::Value ComputeUnit::ToJson() const {
  json::Object o;
  o["flops"] = peak_;
  o["efficiency"] = efficiency_.ToJson();
  return json::Value(std::move(o));
}

ComputeUnit ComputeUnit::FromJson(const json::Value& v) {
  return ComputeUnit(v.at("flops").AsDouble(),
                     v.contains("efficiency")
                         ? EfficiencyCurve::FromJson(v.at("efficiency"))
                         : EfficiencyCurve(1.0));
}

double Processor::OpTime(ComputeKind kind, double flops, double bytes,
                         double compute_slowdown) const {
  CALC_DCHECK(std::isfinite(bytes) && bytes >= 0.0, "bytes = %g", bytes);
  CALC_DCHECK(compute_slowdown >= 0.0 && compute_slowdown < 1.0,
              "compute_slowdown = %g", compute_slowdown);
  const ComputeUnit& unit = (kind == ComputeKind::kMatrix) ? matrix : vector;
  double flop_time = unit.FlopTime(flops);
  if (compute_slowdown > 0.0 && compute_slowdown < 1.0) {
    flop_time /= (1.0 - compute_slowdown);
  }
  const double mem_time = mem1.AccessTime(bytes);
  return roofline == RooflineMode::kMax ? std::max(flop_time, mem_time)
                                        : flop_time + mem_time;
}

json::Value Processor::ToJson() const {
  json::Object o;
  o["matrix"] = matrix.ToJson();
  o["vector"] = vector.ToJson();
  o["mem1"] = mem1.ToJson();
  o["mem2"] = mem2.ToJson();
  o["roofline"] = roofline == RooflineMode::kMax ? "max" : "sum";
  return json::Value(std::move(o));
}

Processor Processor::FromJson(const json::Value& v) {
  Processor p;
  p.matrix = ComputeUnit::FromJson(v.at("matrix"));
  p.vector = ComputeUnit::FromJson(v.at("vector"));
  p.mem1 = Memory::FromJson(v.at("mem1"));
  if (v.contains("mem2")) p.mem2 = Memory::FromJson(v.at("mem2"));
  const std::string mode = v.GetString("roofline", "max");
  if (mode == "max") {
    p.roofline = RooflineMode::kMax;
  } else if (mode == "sum") {
    p.roofline = RooflineMode::kSum;
  } else {
    throw ConfigError("roofline must be 'max' or 'sum', got '" + mode + "'");
  }
  return p;
}

}  // namespace calculon
