#include "hw/processor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace calculon {

ComputeUnit::ComputeUnit(FlopsPerSecond peak, EfficiencyCurve efficiency)
    : peak_(peak), efficiency_(std::move(efficiency)) {
  if (peak_ < FlopsPerSecond(0.0)) throw ConfigError("peak flops must be >= 0");
}

Seconds ComputeUnit::FlopTime(Flops flops) const {
  CALC_DCHECK(IsFinite(flops) && flops >= Flops(0.0), "flops = %g",
              flops.raw());  // unit-ok: diagnostic message
  if (flops <= Flops(0.0)) return Seconds(0.0);
  const FlopsPerSecond rate = peak_ * efficiency_.At(flops);
  if (rate <= FlopsPerSecond(0.0)) {
    return Seconds(std::numeric_limits<double>::infinity());
  }
  return flops / rate;
}

json::Value ComputeUnit::ToJson() const {
  json::Object o;
  o["flops"] = peak_.raw();  // unit-ok: JSON serialize boundary
  o["efficiency"] = efficiency_.ToJson();
  return json::Value(std::move(o));
}

ComputeUnit ComputeUnit::FromJson(const json::Value& v) {
  return ComputeUnit(FlopsPerSecond(v.at("flops").AsDouble()),
                     v.contains("efficiency")
                         ? EfficiencyCurve::FromJson(v.at("efficiency"))
                         : EfficiencyCurve(1.0));
}

Seconds Processor::OpTime(ComputeKind kind, Flops flops, Bytes bytes,
                          double compute_slowdown) const {
  CALC_DCHECK(IsFinite(bytes) && bytes >= Bytes(0.0), "bytes = %g",
              bytes.raw());  // unit-ok: diagnostic message
  CALC_DCHECK(compute_slowdown >= 0.0 && compute_slowdown < 1.0,
              "compute_slowdown = %g", compute_slowdown);
  const ComputeUnit& unit = (kind == ComputeKind::kMatrix) ? matrix : vector;
  Seconds flop_time = unit.FlopTime(flops);
  if (compute_slowdown > 0.0 && compute_slowdown < 1.0) {
    flop_time /= (1.0 - compute_slowdown);
  }
  const Seconds mem_time = mem1.AccessTime(bytes);
  return roofline == RooflineMode::kMax ? std::max(flop_time, mem_time)
                                        : flop_time + mem_time;
}

json::Value Processor::ToJson() const {
  json::Object o;
  o["matrix"] = matrix.ToJson();
  o["vector"] = vector.ToJson();
  o["mem1"] = mem1.ToJson();
  o["mem2"] = mem2.ToJson();
  o["roofline"] = roofline == RooflineMode::kMax ? "max" : "sum";
  return json::Value(std::move(o));
}

Processor Processor::FromJson(const json::Value& v) {
  Processor p;
  p.matrix = ComputeUnit::FromJson(v.at("matrix"));
  p.vector = ComputeUnit::FromJson(v.at("vector"));
  p.mem1 = Memory::FromJson(v.at("mem1"));
  if (v.contains("mem2")) p.mem2 = Memory::FromJson(v.at("mem2"));
  const std::string mode = v.GetString("roofline", "max");
  if (mode == "max") {
    p.roofline = RooflineMode::kMax;
  } else if (mode == "sum") {
    p.roofline = RooflineMode::kSum;
  } else {
    throw ConfigError("roofline must be 'max' or 'sum', got '" + mode + "'");
  }
  return p;
}

}  // namespace calculon
